package bitmap

import (
	"math/rand"
	"testing"
)

func TestSetGetClear(t *testing.T) {
	b := New(130) // crosses two word boundaries with a ragged tail
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("fresh bitmap has bit %d set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("Set(%d) not visible", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 7 {
		t.Fatalf("Clear(64) failed: count %d", b.Count())
	}
}

func TestNewFullMasksTail(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128, 4096} {
		b := NewFull(n)
		if got := b.Count(); got != n {
			t.Fatalf("NewFull(%d).Count() = %d", n, got)
		}
		if n%WordBits != 0 && n > 0 {
			last := b.Words()[len(b.Words())-1]
			if last>>(uint(n%WordBits)) != 0 {
				t.Fatalf("NewFull(%d) left trailing bits set", n)
			}
		}
	}
}

func TestBooleanOpsMatchSets(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 1000
	for trial := 0; trial < 50; trial++ {
		a, b := New(n), New(n)
		as, bs := map[int]bool{}, map[int]bool{}
		for i := 0; i < 300; i++ {
			x, y := rng.Intn(n), rng.Intn(n)
			a.Set(x)
			as[x] = true
			b.Set(y)
			bs[y] = true
		}
		and, or, andnot := a.Clone(), a.Clone(), a.Clone()
		and.And(b)
		or.Or(b)
		andnot.AndNot(b)
		for i := 0; i < n; i++ {
			if and.Get(i) != (as[i] && bs[i]) {
				t.Fatalf("trial %d: And bit %d", trial, i)
			}
			if or.Get(i) != (as[i] || bs[i]) {
				t.Fatalf("trial %d: Or bit %d", trial, i)
			}
			if andnot.Get(i) != (as[i] && !bs[i]) {
				t.Fatalf("trial %d: AndNot bit %d", trial, i)
			}
		}
		if and.Count() != CountWords(and.Words()) {
			t.Fatalf("Count/CountWords disagree")
		}
	}
}

func TestIterateAndAppendPositions(t *testing.T) {
	b := New(500)
	want := []int{0, 1, 63, 64, 200, 255, 256, 499}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.Iterate(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Iterate visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Iterate order: %v, want %v", got, want)
		}
	}
	ap := b.AppendPositions(nil)
	for i := range want {
		if ap[i] != want[i] {
			t.Fatalf("AppendPositions: %v, want %v", ap, want)
		}
	}
	// Early-stop iteration.
	count := 0
	b.Iterate(func(i int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("Iterate did not stop early: %d visits", count)
	}
}

func TestWordRangeViewsShareStorage(t *testing.T) {
	b := New(4096 * 3)
	b.Set(4096 + 7)
	view := b.WordRange(4096, 4096*2)
	if len(view) != 64 {
		t.Fatalf("chunk view has %d words, want 64", len(view))
	}
	if view[0]&(1<<7) == 0 {
		t.Fatalf("chunk view does not see bit set via parent")
	}
	view[1] = 1 // write through the view
	if !b.Get(4096 + 64) {
		t.Fatalf("write through view not visible in parent")
	}
}

func TestAppendWordPositionsBase(t *testing.T) {
	words := []uint64{1 << 3, 1 << 0}
	got := AppendWordPositions(nil, words, 8192)
	if len(got) != 2 || got[0] != 8195 || got[1] != 8256 {
		t.Fatalf("AppendWordPositions = %v", got)
	}
}

func TestAnyAndReset(t *testing.T) {
	b := New(200)
	if b.Any() {
		t.Fatal("empty bitmap Any() = true")
	}
	b.Set(199)
	if !b.Any() || !AnyWord(b.Words()) {
		t.Fatal("Any() missed set bit")
	}
	b.Reset()
	if b.Any() || b.Count() != 0 {
		t.Fatal("Reset left bits")
	}
}

func BenchmarkAndWords1M(b *testing.B) {
	x, y := NewFull(1_000_000), NewFull(1_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndWords(x.Words(), y.Words())
	}
}

func BenchmarkCount1M(b *testing.B) {
	x := NewFull(1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.Count() != 1_000_000 {
			b.Fatal("bad count")
		}
	}
}
