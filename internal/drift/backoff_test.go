package drift

import (
	"errors"
	"testing"
	"time"

	"aimq/internal/query"
	"aimq/internal/relation"
	"aimq/internal/webdb"
)

// flakySource fails until healed, then serves the wrapped source.
type flakySource struct {
	src    webdb.Source
	broken bool
}

func (f *flakySource) Schema() *relation.Schema { return f.src.Schema() }
func (f *flakySource) Query(q *query.Query, limit int) ([]relation.Tuple, error) {
	if f.broken {
		return nil, errors.New("probe refused")
	}
	return f.src.Query(q, limit)
}

func TestMonitorBacksOffOnProbeFailures(t *testing.T) {
	base := genRel(2000, 1, 1, "")
	profile := BuildProfile(base, []int{0}, SketchConfig{})
	profile.Pivot = "Model"

	src := &flakySource{src: webdb.NewLocal(genRel(2000, 11, 1, "")), broken: true}
	mon := NewMonitor(src, profile, MonitorConfig{
		SampleLimit: 1500,
		Interval:    time.Minute,
	})

	if got := mon.NextInterval(); got != time.Minute {
		t.Fatalf("healthy NextInterval = %v, want 1m", got)
	}

	// Failing probes double the re-probe interval, capped at the default
	// 8x the configured interval.
	wants := []time.Duration{
		2 * time.Minute, 4 * time.Minute, 8 * time.Minute, 8 * time.Minute,
	}
	for i, want := range wants {
		if _, err := mon.Tick(); err == nil {
			t.Fatalf("tick %d succeeded on a broken source", i)
		}
		if got := mon.NextInterval(); got != want {
			t.Fatalf("after %d failures NextInterval = %v, want %v", i+1, got, want)
		}
	}

	st := mon.Status()
	if st.ConsecFailures != int64(len(wants)) {
		t.Fatalf("ConsecFailures = %d, want %d", st.ConsecFailures, len(wants))
	}
	if st.Errors != int64(len(wants)) {
		t.Fatalf("Errors = %d, want %d", st.Errors, len(wants))
	}
	if st.LastErr == "" {
		t.Fatal("LastErr empty after failed probes")
	}
	if want := (8 * time.Minute).Seconds(); st.NextIntervalSeconds != want {
		t.Fatalf("NextIntervalSeconds = %g, want %g", st.NextIntervalSeconds, want)
	}

	// One healthy probe resets the backoff completely.
	src.broken = false
	if _, err := mon.Tick(); err != nil {
		t.Fatalf("healed tick: %v", err)
	}
	if got := mon.NextInterval(); got != time.Minute {
		t.Fatalf("NextInterval after recovery = %v, want 1m", got)
	}
	if got := mon.Status().ConsecFailures; got != 0 {
		t.Fatalf("ConsecFailures after recovery = %d, want 0", got)
	}
}

func TestMonitorBackoffCapConfigurable(t *testing.T) {
	base := genRel(500, 1, 1, "")
	profile := BuildProfile(base, []int{0}, SketchConfig{})
	src := &flakySource{src: webdb.NewLocal(base), broken: true}
	mon := NewMonitor(src, profile, MonitorConfig{
		SampleLimit:       400,
		Interval:          time.Minute,
		FailureBackoffMax: 3 * time.Minute,
	})
	for i := 0; i < 5; i++ {
		_, _ = mon.Tick()
	}
	if got := mon.NextInterval(); got != 3*time.Minute {
		t.Fatalf("NextInterval = %v, want configured cap 3m", got)
	}
}

func TestSetBaselineSwapsComparisonAnchor(t *testing.T) {
	oldBase := genRel(2000, 1, 1, "")
	oldProfile := BuildProfile(oldBase, []int{0}, SketchConfig{})
	oldProfile.Pivot = "Model"

	// The live source has drifted far from the old baseline.
	shifted := genRel(2000, 12, 2.5, "")
	mon := NewMonitor(webdb.NewLocal(shifted), oldProfile, MonitorConfig{SampleLimit: 1500})
	rep, err := mon.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxPSI < 0.25 {
		t.Fatalf("old baseline vs shifted source: MaxPSI = %g, want breach", rep.MaxPSI)
	}

	// Rebase onto a profile of the shifted data (what a re-learn produces):
	// the same source now compares clean.
	newProfile := BuildProfile(genRel(2000, 13, 2.5, ""), []int{0}, SketchConfig{})
	newProfile.Pivot = "Model"
	mon.SetBaseline(newProfile)
	if got := mon.Baseline(); got != newProfile {
		t.Fatal("Baseline() does not return the rebased profile")
	}
	rep, err = mon.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxPSI >= 0.25 {
		t.Fatalf("rebased baseline still breaches: MaxPSI = %g", rep.MaxPSI)
	}

	// nil rebases are ignored (a snapshot without a drift profile).
	mon.SetBaseline(nil)
	if mon.Baseline() != newProfile {
		t.Fatal("nil SetBaseline cleared the baseline")
	}
}
