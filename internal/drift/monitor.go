package drift

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"aimq/internal/probe"
	"aimq/internal/webdb"
)

// MonitorConfig tunes the background drift monitor. Zero values select
// defaults suitable for a long-lived serving process.
type MonitorConfig struct {
	// Interval between re-probes. Default 5m.
	Interval time.Duration
	// SampleLimit caps the fresh sample compared against the baseline (the
	// re-probe collects spanning coverage, then samples down). Default 2000.
	SampleLimit int
	// PSIWarn is the per-attribute PSI at or above which a tick counts as a
	// breach and fires OnBreach. Default 0.25 (the conventional
	// "major shift" threshold).
	PSIWarn float64
	// Seed drives the down-sampling RNG. Default 1.
	Seed int64
	// Pivot overrides the probing pivot; "" uses the baseline profile's.
	Pivot string
	// ProbeWorkers is the re-probe's spanning-query parallelism. Default 1.
	ProbeWorkers int
	// FailureBackoffMax caps the exponential backoff Run applies after
	// consecutive re-probe failures (Interval, 2·Interval, 4·Interval, …):
	// hammering an already-unhealthy source at the fixed tick only feeds its
	// breaker. Default 8× Interval.
	FailureBackoffMax time.Duration
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.Interval == 0 {
		c.Interval = 5 * time.Minute
	}
	if c.SampleLimit == 0 {
		c.SampleLimit = 2000
	}
	if c.PSIWarn == 0 {
		c.PSIWarn = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FailureBackoffMax == 0 {
		c.FailureBackoffMax = 8 * c.Interval
	}
	return c
}

// Monitor periodically re-probes a source and compares the fresh sample
// against a baseline Profile. Safe for concurrent use: Tick may be driven
// manually (tests) or by Run's loop, and Status may be read at any time
// (the /metrics and /debug/drift surfaces do).
type Monitor struct {
	src      webdb.Source
	baseline *Profile
	cfg      MonitorConfig

	// OnBreach, when set, fires after any tick whose report crosses
	// PSIWarn. Set before the first Tick/Run; called synchronously from the
	// ticking goroutine.
	OnBreach func(*Report)

	ticks       atomic.Int64
	breaches    atomic.Int64
	errs        atomic.Int64
	consecFails atomic.Int64

	mu      sync.Mutex
	rng     *rand.Rand
	last    *Report
	lastAt  time.Time
	lastErr error
}

// NewMonitor builds a monitor over src with the given baseline.
func NewMonitor(src webdb.Source, baseline *Profile, cfg MonitorConfig) *Monitor {
	cfg = cfg.withDefaults()
	return &Monitor{
		src:      src,
		baseline: baseline,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Baseline returns the profile the monitor compares against.
func (m *Monitor) Baseline() *Profile {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.baseline
}

// SetBaseline rebases the monitor onto a new profile. The model lifecycle
// controller calls this after promoting a re-learned model so drift is
// measured against the data the *serving* model was mined from, not the
// original boot-time sample (which would keep breaching forever).
func (m *Monitor) SetBaseline(p *Profile) {
	if p == nil {
		return
	}
	m.mu.Lock()
	m.baseline = p
	m.mu.Unlock()
}

// PSIWarn returns the breach threshold in effect.
func (m *Monitor) PSIWarn() float64 { return m.cfg.PSIWarn }

// Tick re-probes the source once, compares against the baseline, retains
// the report for Status, and fires OnBreach when the max PSI crosses the
// threshold.
func (m *Monitor) Tick() (*Report, error) {
	m.ticks.Add(1)
	rep, err := m.sampleAndCompare()
	m.mu.Lock()
	m.lastAt = time.Now()
	m.lastErr = err
	if err == nil {
		m.last = rep
	}
	m.mu.Unlock()
	if err != nil {
		m.errs.Add(1)
		m.consecFails.Add(1)
		return nil, err
	}
	m.consecFails.Store(0)
	if rep.MaxPSI >= m.cfg.PSIWarn {
		m.breaches.Add(1)
		if m.OnBreach != nil {
			m.OnBreach(rep)
		}
	}
	return rep, nil
}

func (m *Monitor) sampleAndCompare() (*Report, error) {
	m.mu.Lock()
	baseline := m.baseline
	m.mu.Unlock()
	pivot := m.cfg.Pivot
	if pivot == "" {
		pivot = baseline.Pivot
	}
	if pivot == "" {
		// Baseline predates pivot tracking: rediscover one, the way the
		// learn phase does.
		infos, err := probe.PivotCoverage(m.src, 2000)
		if err != nil {
			return nil, err
		}
		for _, info := range infos {
			if info.DistinctInSeed >= 2 {
				pivot = info.Attr
				break
			}
		}
		if pivot == "" {
			return nil, errors.New("drift: no usable probing pivot")
		}
	}
	m.mu.Lock()
	rng := rand.New(rand.NewSource(m.rng.Int63()))
	m.mu.Unlock()
	collector := probe.New(m.src, rng)
	collector.Parallelism = m.cfg.ProbeWorkers
	sample, err := collector.Collect(pivot)
	if err != nil {
		return nil, err
	}
	if m.cfg.SampleLimit > 0 && sample.Size() > m.cfg.SampleLimit {
		sample = sample.Sample(m.cfg.SampleLimit, rng)
	}
	return Compare(baseline, sample)
}

// Run ticks at the configured interval until ctx is cancelled. Errors are
// retained in Status (and counted), never fatal — a flaky source must not
// kill the monitor. Consecutive failures stretch the wait exponentially
// (capped at FailureBackoffMax) so an unhealthy source isn't re-probed at
// full cadence; the first success snaps back to the base interval.
func (m *Monitor) Run(ctx context.Context) {
	t := time.NewTimer(m.NextInterval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_, _ = m.Tick()
			t.Reset(m.NextInterval())
		}
	}
}

// NextInterval is the delay Run waits before the next tick given the
// current consecutive-failure streak: Interval·2^n, capped.
func (m *Monitor) NextInterval() time.Duration {
	fails := m.consecFails.Load()
	d := m.cfg.Interval
	for i := int64(0); i < fails; i++ {
		d *= 2
		if d >= m.cfg.FailureBackoffMax {
			return m.cfg.FailureBackoffMax
		}
	}
	return d
}

// Status is a point-in-time view of the monitor for the debug and metrics
// surfaces.
type Status struct {
	Ticks    int64   `json:"ticks"`
	Breaches int64   `json:"breaches"`
	Errors   int64   `json:"errors"`
	PSIWarn  float64 `json:"psi_warn"`
	// ConsecFailures counts re-probe failures since the last success; Run's
	// backoff is derived from it (NextIntervalSeconds is the current wait).
	ConsecFailures      int64     `json:"consecutive_failures"`
	NextIntervalSeconds float64   `json:"next_interval_seconds"`
	LastAt              time.Time `json:"last_at,omitempty"`
	LastErr             string    `json:"last_error,omitempty"`
	Last                *Report   `json:"last,omitempty"`
}

// Status snapshots the monitor's counters and last report.
func (m *Monitor) Status() Status {
	st := Status{
		Ticks:               m.ticks.Load(),
		Breaches:            m.breaches.Load(),
		Errors:              m.errs.Load(),
		PSIWarn:             m.cfg.PSIWarn,
		ConsecFailures:      m.consecFails.Load(),
		NextIntervalSeconds: m.NextInterval().Seconds(),
	}
	m.mu.Lock()
	st.LastAt = m.lastAt
	st.Last = m.last
	if m.lastErr != nil {
		st.LastErr = m.lastErr.Error()
	}
	m.mu.Unlock()
	return st
}
