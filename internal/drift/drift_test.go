package drift

import (
	"math"
	"math/rand"
	"testing"

	"aimq/internal/relation"
	"aimq/internal/webdb"
)

func testSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Attribute{Name: "Model", Type: relation.Categorical},
		relation.Attribute{Name: "Make", Type: relation.Categorical},
		relation.Attribute{Name: "Price", Type: relation.Numeric},
	)
}

// genRel draws n tuples with Model→Make exact and prices centered per
// model; priceScale and modelBias perturb the distribution.
func genRel(n int, seed int64, priceScale float64, onlyModel string) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	models := []struct {
		model, mk string
		price     float64
	}{
		{"Camry", "Toyota", 12000},
		{"Civic", "Honda", 9500},
		{"F150", "Ford", 22000},
		{"Focus", "Ford", 9200},
	}
	r := relation.New(testSchema())
	for i := 0; i < n; i++ {
		m := models[rng.Intn(len(models))]
		if onlyModel != "" {
			for _, cand := range models {
				if cand.model == onlyModel {
					m = cand
				}
			}
		}
		price := (m.price + float64(rng.Intn(2000))) * priceScale
		r.Append(relation.Tuple{
			relation.Cat(m.model), relation.Cat(m.mk), relation.Numv(price),
		})
	}
	return r
}

func TestBuildProfileSketches(t *testing.T) {
	rel := genRel(1000, 1, 1, "")
	p := BuildProfile(rel, []int{0}, SketchConfig{})
	if p.SampleSize != 1000 {
		t.Fatalf("SampleSize = %d", p.SampleSize)
	}
	if len(p.Attrs) != 3 {
		t.Fatalf("attrs = %d", len(p.Attrs))
	}
	model := p.Attrs[0]
	if model.Count != 1000 || model.Nulls != 0 {
		t.Errorf("Model count/nulls = %d/%d", model.Count, model.Nulls)
	}
	total := 0
	for _, c := range model.Freq {
		total += c
	}
	if total+model.Other != 1000 {
		t.Errorf("Model freq sums to %d", total+model.Other)
	}
	price := p.Attrs[2]
	if len(price.Edges) != len(price.Counts)+1 {
		t.Fatalf("edges/counts = %d/%d", len(price.Edges), len(price.Counts))
	}
	binned := 0
	for _, c := range price.Counts {
		binned += c
	}
	if binned != 1000 {
		t.Errorf("Price bins sum to %d", binned)
	}
	if price.Mean <= 0 || price.Std <= 0 || price.Min >= price.Max {
		t.Errorf("Price moments: mean=%g std=%g min=%g max=%g", price.Mean, price.Std, price.Min, price.Max)
	}
	// Model is unique per tuple? No — Model is a key only jointly; but
	// Model→Make is exact, so {Model, Make} has the same g3 as {Model}.
	if got, want := p.KeyError, KeyError(rel, []int{0, 1}); got != want {
		t.Errorf("KeyError({Model}) = %g, KeyError({Model,Make}) = %g; Model→Make exact so they must match", got, want)
	}
}

func TestCapFreqPoolsTail(t *testing.T) {
	freq := map[string]int{"a": 10, "b": 8, "c": 5, "d": 2, "e": 1}
	kept, other := capFreq(freq, 3)
	if len(kept) != 3 || other != 3 {
		t.Fatalf("kept=%v other=%d", kept, other)
	}
	if _, ok := kept["a"]; !ok {
		t.Errorf("most frequent value dropped: %v", kept)
	}
}

func TestCompareStableSample(t *testing.T) {
	base := genRel(2000, 1, 1, "")
	p := BuildProfile(base, []int{0}, SketchConfig{})
	fresh := genRel(2000, 99, 1, "") // same distribution, new draw
	rep, err := Compare(p, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxPSI >= 0.1 {
		t.Errorf("stable redraw PSI = %g (attr %s), want < 0.1", rep.MaxPSI, rep.MaxPSIAttr)
	}
	if got := rep.Shifted(0.25); len(got) != 0 {
		t.Errorf("stable redraw flagged %v", got)
	}
	if math.Abs(rep.KeyErrorDelta) > 0.05 {
		t.Errorf("key error delta %g on a stable redraw", rep.KeyErrorDelta)
	}
}

func TestCompareDetectsShift(t *testing.T) {
	base := genRel(2000, 1, 1, "")
	p := BuildProfile(base, []int{0}, SketchConfig{})

	// Price scaled 2x: every observation leaves its baseline bin.
	priced, err := Compare(p, genRel(2000, 5, 2, ""))
	if err != nil {
		t.Fatal(err)
	}
	var pricePSI, modelPSI float64
	for _, a := range priced.Attrs {
		switch a.Name {
		case "Price":
			pricePSI = a.PSI
		case "Model":
			modelPSI = a.PSI
		}
	}
	if pricePSI < 0.25 {
		t.Errorf("2x price shift PSI = %g, want >= 0.25", pricePSI)
	}
	if modelPSI >= 0.1 {
		t.Errorf("untouched Model attr PSI = %g", modelPSI)
	}
	if shifted := priced.Shifted(0.25); len(shifted) == 0 || shifted[0] != "Price" {
		t.Errorf("Shifted = %v, want Price first", shifted)
	}

	// Category collapse: only Camry left — Model and Make both shift.
	collapsed, err := Compare(p, genRel(2000, 6, 1, "Camry"))
	if err != nil {
		t.Fatal(err)
	}
	shifted := collapsed.Shifted(0.25)
	found := map[string]bool{}
	for _, name := range shifted {
		found[name] = true
	}
	if !found["Model"] || !found["Make"] {
		t.Errorf("collapse flagged %v, want Model and Make", shifted)
	}
}

func TestCompareNullRateDelta(t *testing.T) {
	base := genRel(500, 1, 1, "")
	p := BuildProfile(base, nil, SketchConfig{})
	fresh := genRel(500, 2, 1, "")
	// Null out half the Make values.
	for i, tup := range fresh.Tuples() {
		if i%2 == 0 {
			tup[1] = relation.Value{Null: true}
		}
	}
	rep, err := Compare(p, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if d := rep.Attrs[1].NullRateDelta; d < 0.4 || d > 0.6 {
		t.Errorf("Make null-rate delta = %g, want ~0.5", d)
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	p := BuildProfile(genRel(100, 1, 1, ""), nil, SketchConfig{})
	other := relation.New(relation.MustSchema(
		relation.Attribute{Name: "X", Type: relation.Categorical},
	))
	if _, err := Compare(p, other); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestMonitorTickAndBreach(t *testing.T) {
	base := genRel(2000, 1, 1, "")
	profile := BuildProfile(base, []int{0}, SketchConfig{})
	profile.Pivot = "Model"

	sw := webdb.NewSwap(webdb.NewLocal(genRel(2000, 11, 1, "")))
	mon := NewMonitor(sw, profile, MonitorConfig{SampleLimit: 1500})
	var breached *Report
	mon.OnBreach = func(r *Report) { breached = r }

	rep, err := mon.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxPSI >= 0.25 {
		t.Fatalf("healthy tick MaxPSI = %g", rep.MaxPSI)
	}
	if breached != nil {
		t.Fatal("healthy tick fired OnBreach")
	}

	sw.Set(webdb.NewLocal(genRel(2000, 12, 2.5, "")))
	rep, err = mon.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxPSI < 0.25 {
		t.Fatalf("shifted tick MaxPSI = %g, want >= 0.25", rep.MaxPSI)
	}
	if breached == nil {
		t.Fatal("shifted tick did not fire OnBreach")
	}

	st := mon.Status()
	if st.Ticks != 2 || st.Breaches != 1 || st.Errors != 0 {
		t.Errorf("status = %+v", st)
	}
	if st.Last == nil || st.Last.MaxPSI != rep.MaxPSI {
		t.Errorf("status.Last = %+v", st.Last)
	}
}
