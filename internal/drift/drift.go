// Package drift detects distribution shift between the probe sample a model
// was learned from and the source's current contents.
//
// At learn time, BuildProfile snapshots per-attribute distribution sketches
// from the probe sample: categorical frequency tables (capped, with an
// "other" bucket), equi-width numeric histograms with moments, and null
// rates, plus the g3 error of the mined best key re-measured on the same
// sample. The profile is persisted inside the model artifact
// (internal/model), so any process serving the model can later re-probe the
// source and ask "is this still the distribution the model was learned
// for?" — the delta detection the online-model-refresh direction needs
// before a re-learn loop is safe.
//
// Compare aligns a fresh sample against the baseline's bins (the baseline's
// category set and histogram edges, never the fresh sample's own) and
// reports, per attribute, the Population Stability Index, a chi-square
// statistic and the null-rate delta, plus the best key's g3 error
// recomputed on the fresh sample. PSI's conventional thresholds apply:
// < 0.10 stable, 0.10–0.25 moderate shift, > 0.25 major shift (see
// docs/OBSERVABILITY.md for how the monitor maps these onto alerts).
package drift

import (
	"fmt"
	"math"
	"sort"

	"aimq/internal/partition"
	"aimq/internal/relation"
)

// SketchConfig bounds the per-attribute sketches. Zero values select
// defaults sized for web-database schemas (tens of categories, smooth
// numerics).
type SketchConfig struct {
	// MaxCategories caps a categorical frequency table; values beyond the
	// most frequent MaxCategories are pooled into the "other" bucket.
	// Default 64.
	MaxCategories int
	// Bins is the number of equi-width histogram bins per numeric
	// attribute. Default 20.
	Bins int
}

func (c SketchConfig) withDefaults() SketchConfig {
	if c.MaxCategories == 0 {
		c.MaxCategories = 64
	}
	if c.Bins == 0 {
		c.Bins = 20
	}
	return c
}

// AttrSketch is one attribute's distribution snapshot. Exactly one of
// Freq/Other (categorical) or Edges/Counts plus the moments (numeric) is
// populated.
type AttrSketch struct {
	Name  string `json:"name"`
	Type  string `json:"type"`
	Count int    `json:"count"` // non-null observations
	Nulls int    `json:"nulls"`

	// Categorical: value → count for the most frequent values, the rest
	// pooled in Other.
	Freq  map[string]int `json:"freq,omitempty"`
	Other int            `json:"other,omitempty"`

	// Numeric: equi-width histogram over [Edges[0], Edges[len-1]];
	// len(Counts) == len(Edges)-1. Observations outside the range clamp
	// into the boundary bins (the baseline's range is the reference frame).
	Edges  []float64 `json:"edges,omitempty"`
	Counts []int     `json:"counts,omitempty"`
	Mean   float64   `json:"mean,omitempty"`
	Std    float64   `json:"std,omitempty"`
	Min    float64   `json:"min,omitempty"`
	Max    float64   `json:"max,omitempty"`
}

// Profile is the distribution snapshot of one probe sample — the drift
// baseline stored inside the model artifact.
type Profile struct {
	SampleSize int          `json:"sample_size"`
	Attrs      []AttrSketch `json:"attrs"`
	// KeyAttrs / KeyError pin the mined best key and its g3 error measured
	// on this sample; Compare re-measures the same key on fresh samples, so
	// the delta is an AFD-confidence shift, not a mining artifact.
	KeyAttrs []int   `json:"key_attrs,omitempty"`
	KeyError float64 `json:"key_error"`
	// Pivot is the probing pivot the sample was collected with, so a
	// monitor can re-probe the source the same way.
	Pivot string `json:"pivot,omitempty"`
}

// BuildProfile sketches every attribute of rel and measures keyAttrs' g3
// error on it. rel is typically the probe sample the model was mined from.
func BuildProfile(rel *relation.Relation, keyAttrs []int, cfg SketchConfig) *Profile {
	cfg = cfg.withDefaults()
	sc := rel.Schema()
	p := &Profile{
		SampleSize: rel.Size(),
		Attrs:      make([]AttrSketch, sc.Arity()),
		KeyAttrs:   append([]int(nil), keyAttrs...),
	}
	for a := 0; a < sc.Arity(); a++ {
		p.Attrs[a] = sketchAttr(rel, a, cfg)
	}
	p.KeyError = KeyError(rel, keyAttrs)
	return p
}

func sketchAttr(rel *relation.Relation, attr int, cfg SketchConfig) AttrSketch {
	sc := rel.Schema()
	s := AttrSketch{Name: sc.Attr(attr).Name, Type: sc.Type(attr).String()}
	if sc.Type(attr) == relation.Categorical {
		freq := map[string]int{}
		for _, t := range rel.Tuples() {
			v := t[attr]
			if v.IsNull() {
				s.Nulls++
				continue
			}
			s.Count++
			freq[v.Str]++
		}
		s.Freq, s.Other = capFreq(freq, cfg.MaxCategories)
		return s
	}

	// Numeric: one pass for range and moments, one to bin.
	min, max := math.Inf(1), math.Inf(-1)
	var sum, sumSq float64
	for _, t := range rel.Tuples() {
		v := t[attr]
		if v.IsNull() {
			s.Nulls++
			continue
		}
		s.Count++
		min = math.Min(min, v.Num)
		max = math.Max(max, v.Num)
		sum += v.Num
		sumSq += v.Num * v.Num
	}
	if s.Count == 0 {
		return s
	}
	s.Min, s.Max = min, max
	s.Mean = sum / float64(s.Count)
	if variance := sumSq/float64(s.Count) - s.Mean*s.Mean; variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	s.Edges = equiWidthEdges(min, max, cfg.Bins)
	s.Counts = make([]int, len(s.Edges)-1)
	for _, t := range rel.Tuples() {
		if v := t[attr]; !v.IsNull() {
			s.Counts[binIndex(s.Edges, v.Num)]++
		}
	}
	return s
}

// capFreq keeps the top-max entries of freq (ties broken by value for
// determinism) and pools the rest into other.
func capFreq(freq map[string]int, max int) (map[string]int, int) {
	if len(freq) <= max {
		return freq, 0
	}
	type vc struct {
		v string
		c int
	}
	all := make([]vc, 0, len(freq))
	for v, c := range freq {
		all = append(all, vc{v, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].v < all[j].v
	})
	kept := make(map[string]int, max)
	other := 0
	for i, e := range all {
		if i < max {
			kept[e.v] = e.c
		} else {
			other += e.c
		}
	}
	return kept, other
}

// equiWidthEdges returns bins+1 ascending edges spanning [min,max]; a
// degenerate (constant) attribute gets a single unit-width bin around it.
func equiWidthEdges(min, max float64, bins int) []float64 {
	if max <= min {
		return []float64{min - 0.5, min + 0.5}
	}
	edges := make([]float64, bins+1)
	width := (max - min) / float64(bins)
	for i := range edges {
		edges[i] = min + float64(i)*width
	}
	edges[bins] = max
	return edges
}

// binIndex places v into the histogram defined by edges, clamping values
// outside the baseline range into the boundary bins.
func binIndex(edges []float64, v float64) int {
	n := len(edges) - 1
	i := sort.SearchFloat64s(edges[1:], v)
	if i >= n {
		i = n - 1
	}
	return i
}

// KeyError measures the g3 error of keyAttrs as a key of rel (0 = exact
// key). Empty keyAttrs or an empty relation yield 0.
func KeyError(rel *relation.Relation, keyAttrs []int) float64 {
	if len(keyAttrs) == 0 || rel.Size() == 0 {
		return 0
	}
	p := partition.Single(rel, keyAttrs[0])
	if len(keyAttrs) > 1 {
		scratch := partition.NewScratch(rel.Size())
		for _, a := range keyAttrs[1:] {
			p = partition.Product(p, partition.Single(rel, a), scratch)
		}
	}
	return p.G3Key()
}

// AttrReport is one attribute's divergence between the baseline profile and
// a fresh sample.
type AttrReport struct {
	Name string `json:"name"`
	Type string `json:"type"`
	// PSI is the Population Stability Index between the baseline and fresh
	// distributions over the baseline's bins. Conventional reading:
	// < 0.10 stable, 0.10–0.25 moderate shift, > 0.25 major shift.
	PSI float64 `json:"psi"`
	// ChiSquare is Σ (observed-expected)²/expected over the same bins, with
	// expected counts derived from the baseline proportions at the fresh
	// sample size.
	ChiSquare float64 `json:"chi_square"`
	// NullRateDelta is fresh null rate minus baseline null rate.
	NullRateDelta float64 `json:"null_rate_delta"`
	// TopShift names the single bin/category whose probability moved most,
	// as "value:+0.12"-style human-readable provenance.
	TopShift string `json:"top_shift,omitempty"`
}

// Report is the outcome of one baseline-vs-fresh comparison.
type Report struct {
	SampleSize int          `json:"sample_size"` // fresh sample size
	Attrs      []AttrReport `json:"attrs"`
	MaxPSI     float64      `json:"max_psi"`
	MaxPSIAttr string       `json:"max_psi_attr,omitempty"`
	// KeyError is the best key's g3 error on the fresh sample;
	// KeyErrorDelta is KeyError minus the baseline's. A positive delta
	// means the mined key's confidence is decaying as the source shifts.
	KeyError      float64 `json:"key_error"`
	KeyErrorDelta float64 `json:"key_error_delta"`
}

// Shifted returns the attribute names whose PSI meets or exceeds the
// threshold, worst first.
func (r *Report) Shifted(threshold float64) []string {
	type as struct {
		name string
		psi  float64
	}
	var hits []as
	for _, a := range r.Attrs {
		if a.PSI >= threshold {
			hits = append(hits, as{a.Name, a.PSI})
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].psi > hits[j].psi })
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.name
	}
	return out
}

// psiEpsilon floors bin probabilities so empty bins cannot produce infinite
// PSI terms — the standard smoothing for the index.
const psiEpsilon = 1e-4

// Compare measures how far rel's distribution has moved from the baseline:
// rel is binned against the baseline's categories and histogram edges
// (never its own), then PSI, chi-square and null-rate deltas are computed
// per attribute, and the baseline's best key g3 error is re-measured on
// rel. The relation must have the schema the profile was built from.
func Compare(baseline *Profile, rel *relation.Relation) (*Report, error) {
	sc := rel.Schema()
	if sc.Arity() != len(baseline.Attrs) {
		return nil, fmt.Errorf("drift: sample has %d attributes, baseline %d", sc.Arity(), len(baseline.Attrs))
	}
	rep := &Report{SampleSize: rel.Size(), Attrs: make([]AttrReport, 0, sc.Arity())}
	for a := 0; a < sc.Arity(); a++ {
		base := &baseline.Attrs[a]
		if got := sc.Attr(a).Name; got != base.Name {
			return nil, fmt.Errorf("drift: attribute %d is %q in sample, %q in baseline", a, got, base.Name)
		}
		ar := compareAttr(base, rel, a)
		rep.Attrs = append(rep.Attrs, ar)
		if ar.PSI > rep.MaxPSI {
			rep.MaxPSI, rep.MaxPSIAttr = ar.PSI, ar.Name
		}
	}
	rep.KeyError = KeyError(rel, baseline.KeyAttrs)
	rep.KeyErrorDelta = rep.KeyError - baseline.KeyError
	return rep, nil
}

func compareAttr(base *AttrSketch, rel *relation.Relation, attr int) AttrReport {
	ar := AttrReport{Name: base.Name, Type: base.Type}
	baseCounts, freshCounts, labels := alignedCounts(base, rel, attr)

	nulls, nonNull := 0, 0
	for _, t := range rel.Tuples() {
		if t[attr].IsNull() {
			nulls++
		} else {
			nonNull++
		}
	}
	baseTotal := base.Count + base.Nulls
	freshTotal := nulls + nonNull
	if baseTotal > 0 && freshTotal > 0 {
		ar.NullRateDelta = float64(nulls)/float64(freshTotal) - float64(base.Nulls)/float64(baseTotal)
	}

	baseSum, freshSum := 0, 0
	for i := range baseCounts {
		baseSum += baseCounts[i]
		freshSum += freshCounts[i]
	}
	if baseSum == 0 || freshSum == 0 {
		return ar
	}
	var maxShift float64
	for i := range baseCounts {
		p := math.Max(float64(baseCounts[i])/float64(baseSum), psiEpsilon)
		q := math.Max(float64(freshCounts[i])/float64(freshSum), psiEpsilon)
		ar.PSI += (q - p) * math.Log(q/p)
		expected := p * float64(freshSum)
		diff := float64(freshCounts[i]) - expected
		ar.ChiSquare += diff * diff / expected
		if shift := q - p; math.Abs(shift) > math.Abs(maxShift) {
			maxShift = shift
			ar.TopShift = fmt.Sprintf("%s:%+.3f", labels[i], shift)
		}
	}
	return ar
}

// alignedCounts bins rel[attr] against the baseline sketch's reference
// frame and returns (baseline counts, fresh counts, bin labels), index-
// aligned. Categorical values absent from the baseline table land in the
// "other" bucket; numeric values bin against the baseline edges.
func alignedCounts(base *AttrSketch, rel *relation.Relation, attr int) (bc, fc []int, labels []string) {
	if base.Freq != nil || base.Type == relation.Categorical.String() {
		values := make([]string, 0, len(base.Freq))
		for v := range base.Freq {
			values = append(values, v)
		}
		sort.Strings(values)
		idx := make(map[string]int, len(values))
		bc = make([]int, len(values)+1)
		fc = make([]int, len(values)+1)
		labels = make([]string, len(values)+1)
		for i, v := range values {
			idx[v] = i
			bc[i] = base.Freq[v]
			labels[i] = v
		}
		other := len(values)
		bc[other] = base.Other
		labels[other] = "(other)"
		for _, t := range rel.Tuples() {
			v := t[attr]
			if v.IsNull() {
				continue
			}
			if i, ok := idx[v.Str]; ok {
				fc[i]++
			} else {
				fc[other]++
			}
		}
		return bc, fc, labels
	}

	if len(base.Edges) < 2 {
		return nil, nil, nil // baseline saw no numeric values
	}
	n := len(base.Edges) - 1
	bc = append([]int(nil), base.Counts...)
	fc = make([]int, n)
	labels = make([]string, n)
	for i := 0; i < n; i++ {
		labels[i] = fmt.Sprintf("[%.4g,%.4g)", base.Edges[i], base.Edges[i+1])
	}
	for _, t := range rel.Tuples() {
		if v := t[attr]; !v.IsNull() {
			fc[binIndex(base.Edges, v.Num)]++
		}
	}
	return bc, fc, labels
}
