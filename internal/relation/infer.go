package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// InferCSV reads a plain CSV with a single header row (no type row, unlike
// WriteCSV's format) and infers each attribute's type from the data: a
// column is numeric when every non-empty cell parses as a number and the
// column is not obviously an identifier-like low-information code. Empty
// cells and the literal "?" (UCI's missing marker) become nulls.
//
// maxRows caps how many data rows are loaded (0 = all).
func InferCSV(rd io.Reader, maxRows int) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("infer csv: read header: %w", err)
	}
	for i := range header {
		header[i] = strings.TrimSpace(header[i])
		if header[i] == "" {
			return nil, fmt.Errorf("infer csv: empty name for column %d", i)
		}
	}

	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("infer csv: %w", err)
		}
		rows = append(rows, rec)
		if maxRows > 0 && len(rows) >= maxRows {
			break
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("infer csv: no data rows")
	}

	numeric := make([]bool, len(header))
	for c := range header {
		numeric[c] = true
		seen := false
		for _, row := range rows {
			cell := strings.TrimSpace(row[c])
			if cell == "" || cell == "?" {
				continue
			}
			seen = true
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				numeric[c] = false
				break
			}
		}
		if !seen {
			numeric[c] = false // all-null columns default to categorical
		}
	}

	attrs := make([]Attribute, len(header))
	for i, name := range header {
		t := Categorical
		if numeric[i] {
			t = Numeric
		}
		attrs[i] = Attribute{Name: name, Type: t}
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, fmt.Errorf("infer csv: %w", err)
	}

	rel := New(schema)
	for _, row := range rows {
		t := make(Tuple, len(row))
		for c, cell := range row {
			cell = strings.TrimSpace(cell)
			if cell == "" || cell == "?" {
				t[c] = NullValue
				continue
			}
			if numeric[c] {
				f, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("infer csv: column %s: %w", header[c], err)
				}
				t[c] = Numv(f)
			} else {
				t[c] = Cat(cell)
			}
		}
		rel.Append(t)
	}
	return rel, nil
}

// InferCSVFile is InferCSV over a file path.
func InferCSVFile(path string, maxRows int) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("infer csv: %w", err)
	}
	defer f.Close()
	return InferCSV(f, maxRows)
}
