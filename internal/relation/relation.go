package relation

import (
	"fmt"
	"math/rand"
	"sync"
)

// Tuple is one row of a relation: values in schema order. Tuples are value
// slices rather than maps so the miners can iterate the 100k-row datasets
// without per-row allocation.
type Tuple []Value

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Render formats the tuple under the given schema as Name=value pairs.
func (t Tuple) Render(s *Schema) string {
	out := "("
	for i, v := range t {
		if i > 0 {
			out += ", "
		}
		out += s.Attr(i).Name + "=" + v.Render(s.Type(i))
	}
	return out + ")"
}

// Relation is an in-memory bag of tuples under a fixed schema. It is the
// storage substrate for both the simulated autonomous database and the
// mined samples. A Relation is append-only; components that need subsets
// build new Relations (Sample, Select).
type Relation struct {
	schema *Schema
	tuples []Tuple

	// internMu guards the lazily built per-attribute dictionary-code cache
	// (see CatCodes). The cache is a read-side optimization: it never
	// changes what a relation holds, only how fast the miners can group it.
	internMu sync.Mutex
	interned map[int]*catDict
}

// catDict is one attribute's interned dictionary: tuple position → dense
// code, with codes assigned in first-seen order and nulls holding a code of
// their own (nulls group together, matching Value.Key's null sentinel).
type catDict struct {
	codes []int32
	card  int
}

// New creates an empty relation with the given schema.
func New(s *Schema) *Relation {
	return &Relation{schema: s}
}

// NewWithCapacity creates an empty relation with room for n tuples, so bulk
// builders (datagen's million-tuple sets) append without regrowing.
func NewWithCapacity(s *Schema, n int) *Relation {
	return &Relation{schema: s, tuples: make([]Tuple, 0, n)}
}

// FromTuples creates a relation holding the given tuples (not copied).
// Every tuple must match the schema arity.
func FromTuples(s *Schema, tuples []Tuple) (*Relation, error) {
	for i, t := range tuples {
		if len(t) != s.Arity() {
			return nil, fmt.Errorf("relation: tuple %d has arity %d, schema has %d", i, len(t), s.Arity())
		}
	}
	return &Relation{schema: s, tuples: tuples}, nil
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Size returns the number of tuples.
func (r *Relation) Size() int { return len(r.tuples) }

// Tuple returns the tuple at position i. The returned slice is shared; do
// not mutate it.
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Tuples returns the underlying tuple slice. Shared, not a copy; callers
// must treat it as read-only.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Append adds a tuple to the relation. It panics on arity mismatch, which
// is always a programming error.
func (r *Relation) Append(t Tuple) {
	if len(t) != r.schema.Arity() {
		panic(fmt.Sprintf("relation: append arity %d to schema arity %d", len(t), r.schema.Arity()))
	}
	r.tuples = append(r.tuples, t)
}

// Sample returns a new relation holding a simple random sample of n tuples
// drawn without replacement using rng. If n >= Size the whole relation is
// returned (as a shallow copy). This is the paper's §6.2 sampling primitive.
func (r *Relation) Sample(n int, rng *rand.Rand) *Relation {
	if n >= len(r.tuples) {
		out := make([]Tuple, len(r.tuples))
		copy(out, r.tuples)
		return &Relation{schema: r.schema, tuples: out}
	}
	perm := rng.Perm(len(r.tuples))
	out := make([]Tuple, n)
	for i := 0; i < n; i++ {
		out[i] = r.tuples[perm[i]]
	}
	return &Relation{schema: r.schema, tuples: out}
}

// Select returns a new relation with the tuples for which keep returns true.
func (r *Relation) Select(keep func(Tuple) bool) *Relation {
	out := New(r.schema)
	for _, t := range r.tuples {
		if keep(t) {
			out.Append(t)
		}
	}
	return out
}

// Head returns a new relation holding the first n tuples (or all if fewer).
func (r *Relation) Head(n int) *Relation {
	if n > len(r.tuples) {
		n = len(r.tuples)
	}
	out := make([]Tuple, n)
	copy(out, r.tuples)
	return &Relation{schema: r.schema, tuples: out}
}

// CatCodes returns the interned dictionary codes of a categorical attribute:
// one dense int32 code per tuple position (first-seen order, nulls share one
// dedicated code) and the code cardinality. The dictionary is built lazily
// on first use and cached, so repeated mines over one relation intern each
// attribute once; a relation appended to since the cache was built rebuilds
// it. ok is false for non-categorical attributes. The returned slice is
// shared — callers must treat it as read-only.
func (r *Relation) CatCodes(attr int) (codes []int32, card int, ok bool) {
	if r.schema.Type(attr) != Categorical {
		return nil, 0, false
	}
	r.internMu.Lock()
	defer r.internMu.Unlock()
	if d, cached := r.interned[attr]; cached && len(d.codes) == len(r.tuples) {
		return d.codes, d.card, true
	}
	codes = make([]int32, len(r.tuples))
	ids := make(map[string]int32, 64)
	next, nullCode := int32(0), int32(-1)
	for i, t := range r.tuples {
		v := t[attr]
		if v.Null {
			if nullCode < 0 {
				nullCode = next
				next++
			}
			codes[i] = nullCode
			continue
		}
		c, seen := ids[v.Str]
		if !seen {
			c = next
			next++
			ids[v.Str] = c
		}
		codes[i] = c
	}
	if r.interned == nil {
		r.interned = make(map[int]*catDict)
	}
	r.interned[attr] = &catDict{codes: codes, card: int(next)}
	return codes, int(next), true
}

// DistinctValues returns the distinct non-null values of attribute attr in
// first-seen order.
func (r *Relation) DistinctValues(attr int) []Value {
	seen := make(map[string]bool)
	var out []Value
	typ := r.schema.Type(attr)
	for _, t := range r.tuples {
		v := t[attr]
		if v.IsNull() {
			continue
		}
		k := v.Key(typ)
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}

// NumericRange returns the min and max of a numeric attribute over non-null
// values, and ok=false if the attribute has no non-null values.
func (r *Relation) NumericRange(attr int) (min, max float64, ok bool) {
	first := true
	for _, t := range r.tuples {
		v := t[attr]
		if v.IsNull() {
			continue
		}
		if first {
			min, max = v.Num, v.Num
			first = false
			continue
		}
		if v.Num < min {
			min = v.Num
		}
		if v.Num > max {
			max = v.Num
		}
	}
	return min, max, !first
}
