package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"
)

// WriteCSV writes the relation as CSV with a two-row header: the first row
// carries attribute names, the second their types ("categorical"/"numeric").
// The typed header lets ReadCSV reconstruct the schema without guessing.
func WriteCSV(w io.Writer, r *Relation) error {
	cw := csv.NewWriter(w)
	s := r.Schema()
	names := s.Names()
	if err := cw.Write(names); err != nil {
		return fmt.Errorf("write csv header: %w", err)
	}
	types := make([]string, s.Arity())
	for i := range types {
		types[i] = s.Type(i).String()
	}
	if err := cw.Write(types); err != nil {
		return fmt.Errorf("write csv type row: %w", err)
	}
	row := make([]string, s.Arity())
	for _, t := range r.Tuples() {
		for i, v := range t {
			row[i] = v.Render(s.Type(i))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a relation written by WriteCSV.
func ReadCSV(rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.ReuseRecord = false
	names, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read csv header: %w", err)
	}
	typesRow, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read csv type row: %w", err)
	}
	if len(typesRow) != len(names) {
		return nil, fmt.Errorf("csv type row has %d fields, header has %d", len(typesRow), len(names))
	}
	attrs := make([]Attribute, len(names))
	for i, n := range names {
		var t AttrType
		switch strings.TrimSpace(typesRow[i]) {
		case "categorical":
			t = Categorical
		case "numeric":
			t = Numeric
		default:
			return nil, fmt.Errorf("csv type row: unknown type %q for attribute %q", typesRow[i], n)
		}
		attrs[i] = Attribute{Name: n, Type: t}
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	rel := New(schema)
	for line := 3; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("read csv line %d: %w", line, err)
		}
		t := make(Tuple, schema.Arity())
		for i, field := range rec {
			v, err := ParseValue(field, schema.Type(i))
			if err != nil {
				return nil, fmt.Errorf("csv line %d, attribute %s: %w", line, names[i], err)
			}
			t[i] = v
		}
		rel.Append(t)
	}
	return rel, nil
}

// SaveCSV writes the relation to the named file.
func SaveCSV(path string, r *Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("save relation: %w", err)
	}
	defer f.Close()
	if err := WriteCSV(f, r); err != nil {
		return err
	}
	return f.Close()
}

// LoadCSV reads a relation from the named file.
func LoadCSV(path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load relation: %w", err)
	}
	defer f.Close()
	return ReadCSV(f)
}
