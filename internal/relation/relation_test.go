package relation

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func carSchema(t testing.TB) *Schema {
	t.Helper()
	s, err := NewSchema(
		Attribute{Name: "Make", Type: Categorical},
		Attribute{Name: "Model", Type: Categorical},
		Attribute{Name: "Year", Type: Numeric},
		Attribute{Name: "Price", Type: Numeric},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestAttrTypeString(t *testing.T) {
	if Categorical.String() != "categorical" {
		t.Errorf("Categorical.String() = %q", Categorical.String())
	}
	if Numeric.String() != "numeric" {
		t.Errorf("Numeric.String() = %q", Numeric.String())
	}
	if got := AttrType(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown AttrType string = %q", got)
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		typ  AttrType
		want bool
	}{
		{Cat("Ford"), Cat("Ford"), Categorical, true},
		{Cat("Ford"), Cat("Honda"), Categorical, false},
		{Numv(10), Numv(10), Numeric, true},
		{Numv(10), Numv(10.5), Numeric, false},
		{NullValue, NullValue, Categorical, true},
		{NullValue, Cat("Ford"), Categorical, false},
		{Cat("Ford"), NullValue, Categorical, false},
		{NullValue, Numv(0), Numeric, false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b, c.typ); got != c.want {
			t.Errorf("Equal(%v,%v,%v) = %v, want %v", c.a, c.b, c.typ, got, c.want)
		}
	}
}

func TestValueKeyCollision(t *testing.T) {
	if Numv(10000).Key(Numeric) != Numv(1e4).Key(Numeric) {
		t.Errorf("equal floats produced different keys")
	}
	if Numv(10000).Key(Numeric) == Numv(10000.5).Key(Numeric) {
		t.Errorf("distinct floats produced identical keys")
	}
	if NullValue.Key(Categorical) == Cat("").Key(Categorical) {
		// Cat("") should never appear (ParseValue maps "" to null), but the
		// key space must still keep them apart.
		t.Errorf("null key collides with empty string key")
	}
}

func TestValueRender(t *testing.T) {
	cases := []struct {
		v    Value
		typ  AttrType
		want string
	}{
		{Cat("Camry"), Categorical, "Camry"},
		{Numv(10000), Numeric, "10000"},
		{Numv(10.5), Numeric, "10.5"},
		{NullValue, Numeric, "NULL"},
		{NullValue, Categorical, "NULL"},
	}
	for _, c := range cases {
		if got := c.v.Render(c.typ); got != c.want {
			t.Errorf("Render(%v,%v) = %q, want %q", c.v, c.typ, got, c.want)
		}
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue("10.5", Numeric)
	if err != nil || v.Num != 10.5 {
		t.Errorf("ParseValue numeric = %v, %v", v, err)
	}
	v, err = ParseValue("Camry", Categorical)
	if err != nil || v.Str != "Camry" {
		t.Errorf("ParseValue categorical = %v, %v", v, err)
	}
	v, err = ParseValue("", Numeric)
	if err != nil || !v.IsNull() {
		t.Errorf("ParseValue empty = %v, %v; want null", v, err)
	}
	v, err = ParseValue("NULL", Categorical)
	if err != nil || !v.IsNull() {
		t.Errorf("ParseValue NULL = %v, %v; want null", v, err)
	}
	if _, err = ParseValue("not-a-number", Numeric); err == nil {
		t.Errorf("ParseValue accepted garbage numeric")
	}
}

func TestParseRenderRoundTrip(t *testing.T) {
	f := func(n float64, s string) bool {
		if math.IsNaN(n) || math.IsInf(n, 0) {
			return true
		}
		nv := Numv(n)
		got, err := ParseValue(nv.Render(Numeric), Numeric)
		if err != nil || !got.Equal(nv, Numeric) {
			return false
		}
		if s == "" || s == "NULL" || strings.ContainsAny(s, "\x00") {
			return true
		}
		cv := Cat(s)
		got, err = ParseValue(cv.Render(Categorical), Categorical)
		return err == nil && got.Equal(cv, Categorical)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchemaBasics(t *testing.T) {
	s := carSchema(t)
	if s.Arity() != 4 {
		t.Fatalf("Arity = %d", s.Arity())
	}
	if i, ok := s.Index("Price"); !ok || i != 3 {
		t.Errorf("Index(Price) = %d,%v", i, ok)
	}
	if _, ok := s.Index("Nope"); ok {
		t.Errorf("Index(Nope) should be absent")
	}
	if got := s.MustIndex("Make"); got != 0 {
		t.Errorf("MustIndex(Make) = %d", got)
	}
	cats := s.Categorical()
	if len(cats) != 2 || cats[0] != 0 || cats[1] != 1 {
		t.Errorf("Categorical = %v", cats)
	}
	nums := s.NumericAttrs()
	if len(nums) != 2 || nums[0] != 2 || nums[1] != 3 {
		t.Errorf("NumericAttrs = %v", nums)
	}
	if got := s.String(); !strings.Contains(got, "Make:categorical") || !strings.Contains(got, "Price:numeric") {
		t.Errorf("String = %q", got)
	}
	names := s.Names()
	if len(names) != 4 || names[2] != "Year" {
		t.Errorf("Names = %v", names)
	}
	attrs := s.Attrs()
	attrs[0].Name = "mutated"
	if s.Attr(0).Name != "Make" {
		t.Errorf("Attrs() exposed internal state")
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema(Attribute{Name: "", Type: Categorical}); err == nil {
		t.Errorf("NewSchema accepted empty name")
	}
	if _, err := NewSchema(
		Attribute{Name: "A", Type: Categorical},
		Attribute{Name: "A", Type: Numeric},
	); err == nil {
		t.Errorf("NewSchema accepted duplicate name")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MustSchema did not panic on invalid schema")
		}
	}()
	MustSchema(Attribute{Name: "", Type: Numeric})
}

func TestMustIndexPanics(t *testing.T) {
	s := carSchema(t)
	defer func() {
		if recover() == nil {
			t.Errorf("MustIndex did not panic on missing attribute")
		}
	}()
	s.MustIndex("Ghost")
}

func TestAttrSetOps(t *testing.T) {
	s := NewAttrSet(0, 2, 5)
	if !s.Has(0) || !s.Has(2) || !s.Has(5) || s.Has(1) {
		t.Errorf("Has wrong: %b", s)
	}
	if s.Size() != 3 {
		t.Errorf("Size = %d", s.Size())
	}
	if got := s.Add(1).Size(); got != 4 {
		t.Errorf("Add Size = %d", got)
	}
	if got := s.Remove(2); got.Has(2) || got.Size() != 2 {
		t.Errorf("Remove = %v", got.Members())
	}
	if got := s.Union(NewAttrSet(1)); got.Size() != 4 {
		t.Errorf("Union = %v", got.Members())
	}
	if got := s.Intersect(NewAttrSet(2, 5, 7)); got.Size() != 2 || !got.Has(2) || !got.Has(5) {
		t.Errorf("Intersect = %v", got.Members())
	}
	if !s.Contains(NewAttrSet(0, 5)) || s.Contains(NewAttrSet(0, 1)) {
		t.Errorf("Contains wrong")
	}
	if !AttrSet(0).Empty() || s.Empty() {
		t.Errorf("Empty wrong")
	}
	m := s.Members()
	if len(m) != 3 || m[0] != 0 || m[1] != 2 || m[2] != 5 {
		t.Errorf("Members = %v", m)
	}
}

func TestAttrSetProperties(t *testing.T) {
	f := func(a, b uint16) bool {
		sa, sb := AttrSet(a), AttrSet(b)
		if sa.Union(sb).Size() != sa.Size()+sb.Size()-sa.Intersect(sb).Size() {
			return false
		}
		if !sa.Union(sb).Contains(sa) || !sa.Union(sb).Contains(sb) {
			return false
		}
		if !sa.Contains(sa.Intersect(sb)) {
			return false
		}
		// Round-trip through Members.
		if NewAttrSet(sa.Members()...) != sa {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAttrSetLabel(t *testing.T) {
	s := carSchema(t)
	got := NewAttrSet(1, 3).Label(s)
	if got != "{Model,Price}" {
		t.Errorf("Label = %q", got)
	}
}

func buildRel(t testing.TB) *Relation {
	t.Helper()
	s := carSchema(t)
	r := New(s)
	rows := []struct {
		make, model string
		year, price float64
	}{
		{"Toyota", "Camry", 2000, 10000},
		{"Toyota", "Corolla", 2001, 8000},
		{"Honda", "Accord", 2000, 10500},
		{"Honda", "Civic", 1999, 7000},
		{"Ford", "Focus", 2002, 15000},
		{"Toyota", "Camry", 2003, 12000},
	}
	for _, row := range rows {
		r.Append(Tuple{Cat(row.make), Cat(row.model), Numv(row.year), Numv(row.price)})
	}
	return r
}

func TestRelationBasics(t *testing.T) {
	r := buildRel(t)
	if r.Size() != 6 {
		t.Fatalf("Size = %d", r.Size())
	}
	if got := r.Tuple(0)[0].Str; got != "Toyota" {
		t.Errorf("Tuple(0) Make = %q", got)
	}
	dv := r.DistinctValues(0)
	if len(dv) != 3 {
		t.Errorf("DistinctValues(Make) = %d values", len(dv))
	}
	min, max, ok := r.NumericRange(3)
	if !ok || min != 7000 || max != 15000 {
		t.Errorf("NumericRange(Price) = %v,%v,%v", min, max, ok)
	}
	sel := r.Select(func(tp Tuple) bool { return tp[0].Str == "Toyota" })
	if sel.Size() != 3 {
		t.Errorf("Select Toyota = %d", sel.Size())
	}
	h := r.Head(2)
	if h.Size() != 2 || h.Tuple(1)[1].Str != "Corolla" {
		t.Errorf("Head wrong")
	}
	if r.Head(100).Size() != 6 {
		t.Errorf("Head(100) should clamp")
	}
}

func TestRelationAppendArityPanics(t *testing.T) {
	r := buildRel(t)
	defer func() {
		if recover() == nil {
			t.Errorf("Append did not panic on arity mismatch")
		}
	}()
	r.Append(Tuple{Cat("x")})
}

func TestFromTuples(t *testing.T) {
	s := carSchema(t)
	_, err := FromTuples(s, []Tuple{{Cat("a")}})
	if err == nil {
		t.Errorf("FromTuples accepted bad arity")
	}
	r, err := FromTuples(s, []Tuple{{Cat("Toyota"), Cat("Camry"), Numv(2000), Numv(9000)}})
	if err != nil || r.Size() != 1 {
		t.Errorf("FromTuples = %v, %v", r, err)
	}
}

func TestSample(t *testing.T) {
	r := buildRel(t)
	rng := rand.New(rand.NewSource(7))
	s := r.Sample(3, rng)
	if s.Size() != 3 {
		t.Fatalf("Sample size = %d", s.Size())
	}
	// No duplicates (sampling without replacement): identify rows by pointer
	// identity of the shared tuple slices.
	seen := map[*Value]bool{}
	for _, tp := range s.Tuples() {
		if seen[&tp[0]] {
			t.Errorf("Sample returned duplicate tuple")
		}
		seen[&tp[0]] = true
	}
	all := r.Sample(100, rng)
	if all.Size() != r.Size() {
		t.Errorf("Sample(n>size) = %d", all.Size())
	}
}

func TestNumericRangeAllNull(t *testing.T) {
	s := carSchema(t)
	r := New(s)
	r.Append(Tuple{Cat("a"), Cat("b"), NullValue, NullValue})
	if _, _, ok := r.NumericRange(2); ok {
		t.Errorf("NumericRange over all-null attribute reported ok")
	}
	dv := r.DistinctValues(2)
	if len(dv) != 0 {
		t.Errorf("DistinctValues skipped nulls: %v", dv)
	}
}

func TestTupleCloneAndRender(t *testing.T) {
	s := carSchema(t)
	tp := Tuple{Cat("Toyota"), Cat("Camry"), Numv(2000), Numv(10000)}
	cl := tp.Clone()
	cl[0] = Cat("Honda")
	if tp[0].Str != "Toyota" {
		t.Errorf("Clone aliased storage")
	}
	got := tp.Render(s)
	want := "(Make=Toyota, Model=Camry, Year=2000, Price=10000)"
	if got != want {
		t.Errorf("Render = %q, want %q", got, want)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := buildRel(t)
	r.Append(Tuple{NullValue, Cat("Mystery"), NullValue, Numv(5000)})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.Size() != r.Size() {
		t.Fatalf("round trip size %d != %d", got.Size(), r.Size())
	}
	if got.Schema().String() != r.Schema().String() {
		t.Fatalf("round trip schema %s != %s", got.Schema(), r.Schema())
	}
	for i := range r.Tuples() {
		for j := range r.Tuple(i) {
			if !got.Tuple(i)[j].Equal(r.Tuple(i)[j], r.Schema().Type(j)) {
				t.Errorf("tuple %d attr %d: %v != %v", i, j, got.Tuple(i)[j], r.Tuple(i)[j])
			}
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	r := buildRel(t)
	path := t.TempDir() + "/rel.csv"
	if err := SaveCSV(path, r); err != nil {
		t.Fatalf("SaveCSV: %v", err)
	}
	got, err := LoadCSV(path)
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if got.Size() != r.Size() {
		t.Errorf("file round trip size %d != %d", got.Size(), r.Size())
	}
	if _, err := LoadCSV(path + ".missing"); err == nil {
		t.Errorf("LoadCSV of missing file succeeded")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                        // no header
		"A,B\n",                   // missing type row
		"A,B\ncategorical\n",      // short type row
		"A\nweirdtype\n",          // unknown type
		"A\nnumeric\nnot-a-num\n", // bad numeric cell
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: ReadCSV accepted malformed input %q", i, c)
		}
	}
}

func TestInferCSV(t *testing.T) {
	const data = `Make,Model,Year,Price
Toyota,Camry,2000,10000
Honda,Accord,?,10500
Ford,,2002,
`
	rel, err := InferCSV(strings.NewReader(data), 0)
	if err != nil {
		t.Fatalf("InferCSV: %v", err)
	}
	sc := rel.Schema()
	if sc.Type(sc.MustIndex("Make")) != Categorical || sc.Type(sc.MustIndex("Price")) != Numeric {
		t.Errorf("types inferred wrong: %s", sc)
	}
	// Year has a "?" but the rest parse: still numeric, with a null.
	if sc.Type(sc.MustIndex("Year")) != Numeric {
		t.Errorf("Year not numeric: %s", sc)
	}
	if !rel.Tuple(1)[sc.MustIndex("Year")].IsNull() {
		t.Errorf("? not parsed as null")
	}
	if !rel.Tuple(2)[sc.MustIndex("Model")].IsNull() || !rel.Tuple(2)[sc.MustIndex("Price")].IsNull() {
		t.Errorf("empty cells not null")
	}
	if rel.Size() != 3 {
		t.Errorf("rows = %d", rel.Size())
	}
	capped, err := InferCSV(strings.NewReader(data), 2)
	if err != nil || capped.Size() != 2 {
		t.Errorf("maxRows ignored: %v, %v", capped, err)
	}
}

func TestInferCSVAllNullColumn(t *testing.T) {
	const data = "A,B\n?,1\n,2\n"
	rel, err := InferCSV(strings.NewReader(data), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Schema().Type(0) != Categorical {
		t.Errorf("all-null column should default to categorical")
	}
}

func TestInferCSVErrors(t *testing.T) {
	bad := []string{
		"",          // no header
		"A,\n1,2\n", // empty column name
		"A\n",       // no data rows
		"A,B\n1\n",  // ragged row
	}
	for i, s := range bad {
		if _, err := InferCSV(strings.NewReader(s), 0); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := InferCSVFile("/does/not/exist.csv", 0); err == nil {
		t.Errorf("missing file accepted")
	}
}

func TestInferCSVFile(t *testing.T) {
	path := t.TempDir() + "/plain.csv"
	if err := os.WriteFile(path, []byte("X,Y\n1,a\n2,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rel, err := InferCSVFile(path, 0)
	if err != nil || rel.Size() != 2 {
		t.Fatalf("InferCSVFile: %v, %v", rel, err)
	}
	if rel.Schema().Type(0) != Numeric || rel.Schema().Type(1) != Categorical {
		t.Errorf("inferred types: %s", rel.Schema())
	}
}

func TestCatCodes(t *testing.T) {
	s := MustSchema(
		Attribute{Name: "Make", Type: Categorical},
		Attribute{Name: "Price", Type: Numeric},
	)
	r := New(s)
	r.Append(Tuple{Cat("Ford"), Numv(1)})
	r.Append(Tuple{NullValue, Numv(2)})
	r.Append(Tuple{Cat("Toyota"), Numv(3)})
	r.Append(Tuple{Cat("Ford"), Numv(4)})
	r.Append(Tuple{NullValue, Numv(5)})

	codes, card, ok := r.CatCodes(0)
	if !ok || card != 3 {
		t.Fatalf("CatCodes = card %d ok %v", card, ok)
	}
	want := []int32{0, 1, 2, 0, 1} // first-seen order; nulls share one code
	for i, c := range codes {
		if c != want[i] {
			t.Fatalf("codes = %v, want %v", codes, want)
		}
	}
	// Numeric attributes don't intern.
	if _, _, ok := r.CatCodes(1); ok {
		t.Error("CatCodes interned a numeric attribute")
	}
	// Cached: same backing slice on repeat.
	again, _, _ := r.CatCodes(0)
	if &again[0] != &codes[0] {
		t.Error("CatCodes rebuilt an unchanged dictionary")
	}
	// Stale after append: rebuilt at the new size with consistent codes.
	r.Append(Tuple{Cat("Honda"), Numv(6)})
	codes2, card2, _ := r.CatCodes(0)
	if len(codes2) != 6 || card2 != 4 || codes2[5] != 3 {
		t.Errorf("post-append codes = %v card %d", codes2, card2)
	}
}

func TestCatCodesConcurrent(t *testing.T) {
	s := MustSchema(Attribute{Name: "A", Type: Categorical})
	r := New(s)
	for i := 0; i < 500; i++ {
		r.Append(Tuple{Cat(string(rune('a' + i%7)))})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes, card, ok := r.CatCodes(0)
			if !ok || card != 7 || len(codes) != 500 {
				t.Errorf("CatCodes = card %d len %d ok %v", card, len(codes), ok)
			}
		}()
	}
	wg.Wait()
}
