// Package relation provides the typed relational substrate used by every
// other AIMQ component: attribute schemas, tuples, in-memory relations and
// CSV persistence.
//
// AIMQ (Nambiar & Kambhampati, ICDE 2006) operates over a single relation R
// projected by an autonomous Web database. Attributes are either categorical
// (string-valued; e.g. Make, Model, Color) or numeric (continuous; e.g.
// Price, Mileage). The distinction matters throughout the system: query
// relaxation treats them uniformly, but similarity estimation uses the
// supertuple/Jaccard machinery for categorical attributes and a normalized
// L1 distance for numeric ones (paper §5).
package relation

import (
	"fmt"
	"math"
	"strconv"
)

// AttrType classifies an attribute as categorical or numeric.
type AttrType uint8

const (
	// Categorical attributes take opaque string values; similarity between
	// two values is estimated from data associations (paper §5.1).
	Categorical AttrType = iota
	// Numeric attributes take float64 values; similarity is computed with a
	// normalized absolute difference (paper §5).
	Numeric
)

// String returns the lower-case name of the type.
func (t AttrType) String() string {
	switch t {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("AttrType(%d)", uint8(t))
	}
}

// Value is a single attribute binding inside a tuple. Exactly one of the
// representations is meaningful, selected by the owning attribute's type:
// Str for categorical attributes, Num for numeric ones. Null marks a missing
// binding; null values never satisfy any predicate and are skipped by the
// miners.
type Value struct {
	Str  string
	Num  float64
	Null bool
}

// NullValue is the missing binding.
var NullValue = Value{Null: true}

// Cat builds a categorical value.
func Cat(s string) Value { return Value{Str: s} }

// Numv builds a numeric value.
func Numv(f float64) Value { return Value{Num: f} }

// IsNull reports whether the value is a missing binding.
func (v Value) IsNull() bool { return v.Null }

// Equal reports whether two values are identical under the given type.
// Nulls compare equal only to nulls.
func (v Value) Equal(o Value, t AttrType) bool {
	if v.Null || o.Null {
		return v.Null == o.Null
	}
	if t == Numeric {
		return v.Num == o.Num
	}
	return v.Str == o.Str
}

// Key renders the value as a canonical map key under the given type. Numeric
// keys use the shortest round-trip float formatting so 10000 and 1e4 collide.
func (v Value) Key(t AttrType) string {
	if v.Null {
		return "\x00null"
	}
	if t == Numeric {
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
	return v.Str
}

// Render formats the value for human-facing output.
func (v Value) Render(t AttrType) string {
	if v.Null {
		return "NULL"
	}
	if t == Numeric {
		if v.Num == math.Trunc(v.Num) && math.Abs(v.Num) < 1e15 {
			return strconv.FormatInt(int64(v.Num), 10)
		}
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
	return v.Str
}

// ParseValue parses the string form of a value under the given type. Empty
// strings and the literal "NULL" parse as the null value. Numeric parsing
// failures are reported as errors rather than silently coerced.
func ParseValue(s string, t AttrType) (Value, error) {
	if s == "" || s == "NULL" {
		return NullValue, nil
	}
	if t == Numeric {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse numeric value %q: %w", s, err)
		}
		return Numv(f), nil
	}
	return Cat(s), nil
}
