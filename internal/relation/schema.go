package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Attribute describes one column of a relation.
type Attribute struct {
	Name string
	Type AttrType
}

// Schema is an ordered list of attributes with name-based lookup. A Schema
// is immutable after construction; components share pointers to it freely.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema from the given attributes. Attribute names must
// be non-empty and unique (case-sensitive).
func NewSchema(attrs ...Attribute) (*Schema, error) {
	s := &Schema{
		attrs: make([]Attribute, len(attrs)),
		index: make(map[string]int, len(attrs)),
	}
	copy(s.attrs, attrs)
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("schema: attribute %d has empty name", i)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate attribute %q", a.Name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for statically
// known schemas (generators, tests).
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attr returns the attribute at position i.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute {
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Names returns the attribute names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// Index returns the position of the named attribute and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustIndex returns the position of the named attribute, panicking if absent.
// Use only where the attribute is statically known to exist.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("schema: no attribute %q", name))
	}
	return i
}

// Type returns the type of the attribute at position i.
func (s *Schema) Type(i int) AttrType { return s.attrs[i].Type }

// Categorical returns the positions of all categorical attributes.
func (s *Schema) Categorical() []int {
	var out []int
	for i, a := range s.attrs {
		if a.Type == Categorical {
			out = append(out, i)
		}
	}
	return out
}

// NumericAttrs returns the positions of all numeric attributes.
func (s *Schema) NumericAttrs() []int {
	var out []int
	for i, a := range s.attrs {
		if a.Type == Numeric {
			out = append(out, i)
		}
	}
	return out
}

// String renders the schema as R(Name:type, ...).
func (s *Schema) String() string {
	parts := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		parts[i] = fmt.Sprintf("%s:%s", a.Name, a.Type)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// AttrSet is a set of attribute positions, represented as a bitmask. Schemas
// in AIMQ's domain are small (≤ 64 attributes), which makes the bitmask both
// compact and the natural key for the TANE lattice.
type AttrSet uint64

// NewAttrSet builds a set from attribute positions.
func NewAttrSet(idxs ...int) AttrSet {
	var s AttrSet
	for _, i := range idxs {
		s |= 1 << uint(i)
	}
	return s
}

// Has reports whether position i is in the set.
func (s AttrSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// Add returns the set with position i added.
func (s AttrSet) Add(i int) AttrSet { return s | 1<<uint(i) }

// Remove returns the set with position i removed.
func (s AttrSet) Remove(i int) AttrSet { return s &^ (1 << uint(i)) }

// Union returns the union of two sets.
func (s AttrSet) Union(o AttrSet) AttrSet { return s | o }

// Intersect returns the intersection of two sets.
func (s AttrSet) Intersect(o AttrSet) AttrSet { return s & o }

// Contains reports whether o ⊆ s.
func (s AttrSet) Contains(o AttrSet) bool { return s&o == o }

// Size returns the number of positions in the set.
func (s AttrSet) Size() int {
	n := 0
	for v := s; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Empty reports whether the set has no members.
func (s AttrSet) Empty() bool { return s == 0 }

// Members returns the positions in ascending order.
func (s AttrSet) Members() []int {
	out := make([]int, 0, s.Size())
	for i := 0; s>>uint(i) != 0; i++ {
		if s.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// Label renders the set using the schema's attribute names, e.g. "{Make,Year}".
func (s AttrSet) Label(sc *Schema) string {
	ms := s.Members()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = sc.Attr(m).Name
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ",") + "}"
}
