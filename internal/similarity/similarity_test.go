package similarity

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"aimq/internal/afd"
	"aimq/internal/query"
	"aimq/internal/relation"
	"aimq/internal/supertuple"
	"aimq/internal/tane"
)

func carSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Attribute{Name: "Make", Type: relation.Categorical},
		relation.Attribute{Name: "Model", Type: relation.Categorical},
		relation.Attribute{Name: "Class", Type: relation.Categorical},
		relation.Attribute{Name: "Price", Type: relation.Numeric},
	)
}

// structuredRel plants similarity structure: Camry/Accord are midsize
// sedans at similar prices; F150/Ram are trucks at higher prices. So
// VSim(Camry, Accord) should far exceed VSim(Camry, F150).
func structuredRel() *relation.Relation {
	r := relation.New(carSchema())
	add := func(mk, md, cl string, p float64, times int) {
		for i := 0; i < times; i++ {
			// Tiny per-tuple price jitter keeps Price a near-key (Algorithm 2
			// needs an approximate key) without moving values across buckets.
			r.Append(relation.Tuple{relation.Cat(mk), relation.Cat(md), relation.Cat(cl), relation.Numv(p + float64(i))})
		}
	}
	add("Toyota", "Camry", "sedan", 10000, 10)
	add("Toyota", "Camry", "sedan", 12000, 5)
	add("Honda", "Accord", "sedan", 10500, 10)
	add("Honda", "Accord", "sedan", 12500, 5)
	add("Ford", "F150", "truck", 25000, 10)
	add("Dodge", "Ram", "truck", 26000, 10)
	return r
}

func buildEstimator(t testing.TB, rel *relation.Relation) *Estimator {
	t.Helper()
	res := tane.Miner{Terr: 0.4, MaxLHS: 2}.Mine(rel)
	ord, err := afd.Order(res)
	if err != nil {
		t.Fatalf("Order: %v", err)
	}
	idx := supertuple.Builder{Buckets: 8}.Build(rel)
	return New(idx, ord, Config{})
}

func TestVSimStructure(t *testing.T) {
	e := buildEstimator(t, structuredRel())
	model := e.Schema.MustIndex("Model")
	sedans := e.VSim(model, "Camry", "Accord")
	cross := e.VSim(model, "Camry", "F150")
	if sedans <= cross {
		t.Errorf("VSim(Camry,Accord)=%v should exceed VSim(Camry,F150)=%v", sedans, cross)
	}
	if sedans <= 0 || sedans > 1 {
		t.Errorf("VSim out of range: %v", sedans)
	}
}

func TestVSimIdentityAndSymmetry(t *testing.T) {
	e := buildEstimator(t, structuredRel())
	model := e.Schema.MustIndex("Model")
	if e.VSim(model, "Camry", "Camry") != 1 {
		t.Errorf("self similarity != 1")
	}
	vals := e.Index.Values(model)
	for _, a := range vals {
		for _, b := range vals {
			if e.VSim(model, a, b) != e.VSim(model, b, a) {
				t.Errorf("VSim(%s,%s) asymmetric", a, b)
			}
		}
	}
	if e.VSim(model, "Camry", "UnseenValue") != 0 {
		t.Errorf("unseen value has nonzero similarity")
	}
	if e.VSim(model, "Unseen1", "Unseen2") != 0 {
		t.Errorf("two unseen values have nonzero similarity")
	}
}

func TestTopSimilar(t *testing.T) {
	e := buildEstimator(t, structuredRel())
	model := e.Schema.MustIndex("Model")
	top := e.TopSimilar(model, "Camry", 2)
	if len(top) == 0 || top[0].Value != "Accord" {
		t.Fatalf("TopSimilar(Camry) = %v, want Accord first", top)
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Sim < top[i].Sim {
			t.Errorf("TopSimilar not descending")
		}
	}
	if len(e.TopSimilar(model, "NoSuch", 5)) != 0 {
		t.Errorf("TopSimilar of unseen value returned entries")
	}
}

func TestGraph(t *testing.T) {
	e := buildEstimator(t, structuredRel())
	model := e.Schema.MustIndex("Model")
	edges := e.Graph(model, 0)
	if len(edges) == 0 {
		t.Fatalf("no edges in similarity graph")
	}
	seen := map[string]bool{}
	for _, ed := range edges {
		if ed.A >= ed.B {
			t.Errorf("edge %v not canonical", ed)
		}
		k := ed.A + "|" + ed.B
		if seen[k] {
			t.Errorf("duplicate edge %v", ed)
		}
		seen[k] = true
	}
	// High threshold prunes.
	pruned := e.Graph(model, 0.99)
	if len(pruned) >= len(edges) {
		t.Errorf("threshold did not prune: %d vs %d", len(pruned), len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i-1].Sim < edges[i].Sim {
			t.Errorf("edges not sorted by similarity")
		}
	}
}

func TestNumericSim(t *testing.T) {
	cases := []struct {
		q, t, want float64
	}{
		{10000, 10000, 1},
		{10000, 10500, 0.95},
		{10000, 5000, 0.5},
		{10000, 25000, 0}, // distance ratio 1.5 clamps to 1
		{10000, 0, 0},
		{0, 0, 1},
		{0, 5, 0},
		{-100, -110, 0.9},
	}
	for _, c := range cases {
		if got := NumericSim(c.q, c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NumericSim(%v,%v) = %v, want %v", c.q, c.t, got, c.want)
		}
	}
}

func TestNumericSimBounds(t *testing.T) {
	f := func(q, tv float64) bool {
		if math.IsNaN(q) || math.IsNaN(tv) || math.IsInf(q, 0) || math.IsInf(tv, 0) {
			return true
		}
		s := NumericSim(q, tv)
		return s >= 0 && s <= 1 && !math.IsNaN(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimQueryTuple(t *testing.T) {
	e := buildEstimator(t, structuredRel())
	s := e.Schema
	q := query.New(s).
		Where("Model", query.OpLike, relation.Cat("Camry")).
		Where("Price", query.OpLike, relation.Numv(10000))
	camry := relation.Tuple{relation.Cat("Toyota"), relation.Cat("Camry"), relation.Cat("sedan"), relation.Numv(10000)}
	accord := relation.Tuple{relation.Cat("Honda"), relation.Cat("Accord"), relation.Cat("sedan"), relation.Numv(10500)}
	truck := relation.Tuple{relation.Cat("Ford"), relation.Cat("F150"), relation.Cat("truck"), relation.Numv(25000)}

	sCamry, sAccord, sTruck := e.Sim(q, camry), e.Sim(q, accord), e.Sim(q, truck)
	if !(sCamry > sAccord && sAccord > sTruck) {
		t.Errorf("Sim ordering wrong: camry=%v accord=%v truck=%v", sCamry, sAccord, sTruck)
	}
	if math.Abs(sCamry-1) > 1e-9 {
		t.Errorf("exact match Sim = %v, want 1", sCamry)
	}
	if sTruck < 0 || sTruck > 1 {
		t.Errorf("Sim out of bounds: %v", sTruck)
	}
	if got := e.Sim(query.New(s), camry); got != 0 {
		t.Errorf("empty query Sim = %v", got)
	}
}

func TestSimRangePredicateUsesMidpoint(t *testing.T) {
	e := buildEstimator(t, structuredRel())
	s := e.Schema
	q := query.New(s).WhereRange("Price", 9000, 11000) // midpoint 10000
	tp := relation.Tuple{relation.Cat("Toyota"), relation.Cat("Camry"), relation.Cat("sedan"), relation.Numv(10000)}
	if got := e.Sim(q, tp); math.Abs(got-1) > 1e-9 {
		t.Errorf("range midpoint Sim = %v, want 1", got)
	}
}

func TestSimNullTupleValue(t *testing.T) {
	e := buildEstimator(t, structuredRel())
	s := e.Schema
	q := query.New(s).
		Where("Model", query.OpLike, relation.Cat("Camry")).
		Where("Price", query.OpLike, relation.Numv(10000))
	tp := relation.Tuple{relation.Cat("Toyota"), relation.NullValue, relation.Cat("sedan"), relation.Numv(10000)}
	got := e.Sim(q, tp)
	if got <= 0 || got >= 1 {
		t.Errorf("null-model Sim = %v, want strictly between 0 and 1", got)
	}
}

func TestSimTuples(t *testing.T) {
	e := buildEstimator(t, structuredRel())
	all := relation.NewAttrSet(0, 1, 2, 3)
	camry := relation.Tuple{relation.Cat("Toyota"), relation.Cat("Camry"), relation.Cat("sedan"), relation.Numv(10000)}
	accord := relation.Tuple{relation.Cat("Honda"), relation.Cat("Accord"), relation.Cat("sedan"), relation.Numv(10500)}
	if got := e.SimTuples(camry, camry, all); math.Abs(got-1) > 1e-9 {
		t.Errorf("self SimTuples = %v", got)
	}
	ab := e.SimTuples(camry, accord, all)
	ba := e.SimTuples(accord, camry, all)
	if ab <= 0 || ab > 1 {
		t.Errorf("SimTuples out of range: %v", ab)
	}
	// Not exactly symmetric in general (numeric denominator differs), but
	// close for nearby values.
	if math.Abs(ab-ba) > 0.05 {
		t.Errorf("SimTuples wildly asymmetric: %v vs %v", ab, ba)
	}
	if got := e.SimTuples(camry, accord, relation.AttrSet(0)); got != 0 {
		t.Errorf("empty attrs SimTuples = %v", got)
	}
}

func TestMinSimPrunesMatrix(t *testing.T) {
	rel := structuredRel()
	res := tane.Miner{Terr: 0.4, MaxLHS: 2}.Mine(rel)
	ord, err := afd.Order(res)
	if err != nil {
		t.Fatal(err)
	}
	idx := supertuple.Builder{Buckets: 8}.Build(rel)
	dense := New(idx, ord, Config{})
	sparse := New(idx, ord, Config{MinSim: 0.9})
	model := rel.Schema().MustIndex("Model")
	if len(sparse.Graph(model, 0)) >= len(dense.Graph(model, 0)) {
		t.Errorf("MinSim did not prune the matrix")
	}
}

func TestDescribeNeighborhood(t *testing.T) {
	e := buildEstimator(t, structuredRel())
	model := e.Schema.MustIndex("Model")
	out := e.DescribeNeighborhood(model, "Camry", 3)
	if !strings.Contains(out, "Model=Camry:") || !strings.Contains(out, "Accord") {
		t.Errorf("DescribeNeighborhood = %q", out)
	}
}

func TestSimInPredicate(t *testing.T) {
	e := buildEstimator(t, structuredRel())
	s := e.Schema
	q := query.New(s).WhereIn("Model", relation.Cat("Camry"), relation.Cat("F150"))
	camry := relation.Tuple{relation.Cat("Toyota"), relation.Cat("Camry"), relation.Cat("sedan"), relation.Numv(10000)}
	// Exact member: best alternative is itself → similarity 1.
	if got := e.Sim(q, camry); math.Abs(got-1) > 1e-9 {
		t.Errorf("in-list member Sim = %v", got)
	}
	// Non-member scores its best alternative's VSim.
	accord := relation.Tuple{relation.Cat("Honda"), relation.Cat("Accord"), relation.Cat("sedan"), relation.Numv(10500)}
	model := s.MustIndex("Model")
	want := math.Max(e.VSim(model, "Camry", "Accord"), e.VSim(model, "F150", "Accord"))
	if got := e.Sim(q, accord); math.Abs(got-want) > 1e-9 {
		t.Errorf("in-list Sim = %v, want %v", got, want)
	}
	// Numeric in-list takes the closest alternative.
	qn := query.New(s).WhereIn("Price", relation.Numv(10000), relation.Numv(20000))
	if got := e.Sim(qn, camry); math.Abs(got-1) > 1e-9 {
		t.Errorf("numeric in Sim = %v", got)
	}
}

// wideRel plants ~30 distinct Model values so the chunked pair sweep
// actually splits across several workers (workers are capped at k/2).
func wideRel() *relation.Relation {
	r := relation.New(carSchema())
	makes := []string{"Toyota", "Honda", "Ford", "Dodge", "Nissan"}
	classes := []string{"sedan", "truck", "coupe"}
	for m := 0; m < 30; m++ {
		mk := makes[m%len(makes)]
		cl := classes[m%len(classes)]
		price := 9000 + 700*float64(m)
		for i := 0; i < 4; i++ {
			r.Append(relation.Tuple{
				relation.Cat(mk),
				relation.Cat(fmt.Sprintf("model-%02d", m)),
				relation.Cat(cl),
				relation.Numv(price + float64(i)),
			})
		}
	}
	return r
}

// TestSweepBitIdentity: the chunked pair sweep must produce a matrix
// bit-identical to the serial sweep at every worker count — float
// accumulation happens entirely inside vsim per pair, so partitioning can
// never change a single ulp.
func TestSweepBitIdentity(t *testing.T) {
	rel := wideRel()
	res := tane.Miner{Terr: 0.4, MaxLHS: 2}.Mine(rel)
	ord, err := afd.Order(res)
	if err != nil {
		t.Fatal(err)
	}
	idx := supertuple.Builder{Buckets: 8}.Build(rel)
	serial := New(idx, ord, Config{SweepWorkers: 1})
	for _, workers := range []int{0, 2, 3, 7, 64} {
		par := New(idx, ord, Config{SweepWorkers: workers})
		for _, attr := range rel.Schema().Categorical() {
			a, b := serial.Matrix(attr), par.Matrix(attr)
			if len(a) != len(b) {
				t.Fatalf("workers=%d attr %d: %d rows vs %d", workers, attr, len(b), len(a))
			}
			for v1, row := range a {
				prow := b[v1]
				if len(prow) != len(row) {
					t.Fatalf("workers=%d attr %d row %q: %d entries vs %d", workers, attr, v1, len(prow), len(row))
				}
				for v2, sim := range row {
					if psim, ok := prow[v2]; !ok || psim != sim {
						t.Fatalf("workers=%d attr %d: VSim(%q,%q) = %v, serial %v (must be bit-identical)",
							workers, attr, v1, v2, psim, sim)
					}
				}
			}
		}
	}
}
