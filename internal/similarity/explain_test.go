package similarity

import (
	"testing"

	"aimq/internal/query"
	"aimq/internal/relation"
)

// TestSimExplainSumsExactly: the decomposition's terms must sum — bit for
// bit, not within an epsilon — to what Sim returns, because the explain API
// advertises the breakdown of the *reported* score.
func TestSimExplainSumsExactly(t *testing.T) {
	e := buildEstimator(t, structuredRel())
	sc := e.Schema
	queries := []string{
		"Model like Camry",
		"Model like Camry, Price like 10000",
		"Make like Toyota, Model like Accord, Class like sedan, Price like 12000",
		"Price like 25000",
	}
	tuples := []relation.Tuple{
		{relation.Cat("Honda"), relation.Cat("Accord"), relation.Cat("sedan"), relation.Numv(10500)},
		{relation.Cat("Ford"), relation.Cat("F150"), relation.Cat("truck"), relation.Numv(25000)},
		{relation.Cat("Toyota"), relation.Cat("Camry"), relation.Cat("sedan"), relation.Numv(12000)},
		{relation.Cat("Dodge"), relation.NullValue, relation.Cat("truck"), relation.Numv(26000)}, // null Model
	}
	for _, qs := range queries {
		q, err := query.Parse(sc, qs)
		if err != nil {
			t.Fatalf("Parse(%q): %v", qs, err)
		}
		for _, tp := range tuples {
			want := e.Sim(q, tp)
			total, contribs := e.SimExplain(q, tp)
			if total != want {
				t.Errorf("%q vs %v: SimExplain total %v != Sim %v", qs, tp, total, want)
			}
			if len(contribs) != len(q.Preds) {
				t.Errorf("%q: %d contributions for %d predicates", qs, len(contribs), len(q.Preds))
			}
			sum := 0.0
			for _, c := range contribs {
				sum += c.Term
			}
			if sum != want {
				t.Errorf("%q vs %v: contribution sum %v != Sim %v", qs, tp, sum, want)
			}
		}
	}
}

// Null tuple values must appear in the breakdown with a zero term, so the
// explanation still names every bound attribute.
func TestSimExplainNullValue(t *testing.T) {
	e := buildEstimator(t, structuredRel())
	q, err := query.Parse(e.Schema, "Model like Camry, Price like 10000")
	if err != nil {
		t.Fatal(err)
	}
	tp := relation.Tuple{relation.Cat("Toyota"), relation.NullValue, relation.Cat("sedan"), relation.Numv(10000)}
	total, contribs := e.SimExplain(q, tp)
	if len(contribs) != 2 {
		t.Fatalf("contribs = %v", contribs)
	}
	if contribs[0].Attr != "Model" || contribs[0].Sim != 0 || contribs[0].Term != 0 {
		t.Errorf("null Model contribution = %+v, want zero term", contribs[0])
	}
	if contribs[0].Weight == 0 {
		t.Errorf("null contribution lost its weight")
	}
	if total != e.Sim(q, tp) {
		t.Errorf("total %v != Sim %v", total, e.Sim(q, tp))
	}
}
