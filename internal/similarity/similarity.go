// Package similarity implements AIMQ's query-tuple similarity estimation
// (paper §5): the categorical value-similarity measure VSim mined from
// supertuples, the numeric similarity, and the weighted combination Sim(Q,t)
// used to rank answers.
//
//	Sim(Q,t) = Σ_i W_imp(A_i) × { VSim(Q.A_i, t.A_i)          categorical
//	                            { 1 − |Q.A_i − t.A_i| / Q.A_i  numerical
//
// over the attributes bound by Q, with the numeric distance clamped at 1 so
// similarity is bounded below by 0. VSim between two values of a
// categorical attribute is the weighted sum of bag-semantics Jaccard
// coefficients between the corresponding supertuples' per-attribute keyword
// bags, again weighted by attribute importance.
package similarity

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"aimq/internal/afd"
	"aimq/internal/bag"
	"aimq/internal/obs"
	"aimq/internal/query"
	"aimq/internal/relation"
	"aimq/internal/supertuple"
)

// Estimator computes value and query-tuple similarities. Build one per
// mined sample with New; it precomputes the pairwise value-similarity
// matrix for every categorical attribute (the paper's O(m·k²) offline
// "similarity estimation" phase of Table 2).
type Estimator struct {
	Schema   *relation.Schema
	Ordering *afd.Ordering
	Index    *supertuple.Index

	// MinSim: precomputed pair similarities below this are dropped from
	// the matrix (they read back as 0). Keeps the matrices sparse.
	MinSim float64

	sweepWorkers int

	// matrices[attr][v1][v2] = VSim(v1, v2), v1 != v2, symmetric storage.
	matrices map[int]map[string]map[string]float64
}

// Config tunes Estimator construction.
type Config struct {
	// MinSim drops precomputed similarities below this value. Default 0
	// (keep all nonzero).
	MinSim float64

	// SweepWorkers chunks each attribute's O(k²) pair sweep across this
	// many goroutines (k = distinct values of the attribute). 0 uses
	// GOMAXPROCS; 1 forces the serial sweep. Every pair is computed
	// independently from the same flattened bags, so the resulting matrix
	// is bit-identical at any worker count.
	SweepWorkers int
}

// New builds an estimator from a supertuple index and an attribute
// ordering, precomputing all pairwise categorical value similarities. The
// per-attribute matrices are independent, so they are computed in parallel
// (this is the offline "similarity estimation" phase of Table 2).
func New(idx *supertuple.Index, ord *afd.Ordering, cfg Config) *Estimator {
	e := &Estimator{
		Schema:       idx.Schema,
		Ordering:     ord,
		Index:        idx,
		MinSim:       cfg.MinSim,
		sweepWorkers: cfg.SweepWorkers,
		matrices:     make(map[int]map[string]map[string]float64),
	}
	cats := e.Schema.Categorical()
	results := make([]map[string]map[string]float64, len(cats))
	var wg sync.WaitGroup
	for i, attr := range cats {
		wg.Add(1)
		go func(i, attr int) {
			defer wg.Done()
			results[i] = e.computeMatrix(attr)
		}(i, attr)
	}
	wg.Wait()
	for i, attr := range cats {
		e.matrices[attr] = results[i]
	}
	return e
}

// computeMatrix computes VSim for every pair of values of one categorical
// attribute. Attribute-bag weights are the importance weights over the
// *other* attributes of the relation (the supertuple never bags its own
// attribute).
func (e *Estimator) computeMatrix(attr int) map[string]map[string]float64 {
	values := e.Index.Values(attr)
	others := relation.AttrSet(0)
	attrs := make([]int, 0, e.Schema.Arity()-1)
	for a := 0; a < e.Schema.Arity(); a++ {
		if a != attr {
			others = others.Add(a)
			attrs = append(attrs, a)
		}
	}
	weights := e.Ordering.ImportanceWeights(others)

	// Flatten every value's bags once: the O(k²) pair sweep below is the
	// dominant cost of the offline phase, and merge-joining sorted slices
	// beats re-hashing the same bag maps k times each.
	wflat := make([]float64, len(attrs))
	for i, a := range attrs {
		wflat[i] = weights[a]
	}
	flats := make([][][]bag.Entry, len(values))
	for i, v := range values {
		st := e.Index.Get(attr, v)
		fl := make([][]bag.Entry, len(attrs))
		for j, a := range attrs {
			if bg, ok := st.Bags[a]; ok {
				fl[j] = bag.Flatten(bg)
			}
		}
		flats[i] = fl
	}

	m := make(map[string]map[string]float64, len(values))
	put := func(a, b string, sim float64) {
		row := m[a]
		if row == nil {
			row = make(map[string]float64)
			m[a] = row
		}
		row[b] = sim
	}
	for _, p := range e.sweepPairs(values, flats, wflat) {
		put(values[p.i], values[p.j], p.sim)
		put(values[p.j], values[p.i], p.sim)
	}
	return m
}

// pairSim is one surviving (above-threshold) pair of the sweep.
type pairSim struct {
	i, j int
	sim  float64
}

// sweepPairs runs the O(k²) pair sweep, chunked across sweepWorkers
// goroutines. Rows are dealt round-robin (worker w takes rows w, w+n,
// w+2n, …) so the triangular workload stays balanced without estimating
// per-row cost. Each pair reads only the shared immutable flats, so the
// partitioning cannot change any computed similarity: the matrix is
// bit-identical at every worker count (asserted by TestSweepBitIdentity).
func (e *Estimator) sweepPairs(values []string, flats [][][]bag.Entry, wflat []float64) []pairSim {
	k := len(values)
	sweepRow := func(i int, out []pairSim) []pairSim {
		for j := i + 1; j < k; j++ {
			sim := vsim(flats[i], flats[j], wflat)
			if sim <= 0 || sim < e.MinSim {
				continue
			}
			out = append(out, pairSim{i: i, j: j, sim: sim})
		}
		return out
	}

	workers := e.sweepWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k/2 {
		workers = k / 2 // too few rows to be worth splitting further
	}
	if workers <= 1 {
		var out []pairSim
		for i := 0; i < k; i++ {
			out = sweepRow(i, out)
		}
		return out
	}

	parts := make([][]pairSim, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var out []pairSim
			for i := w; i < k; i += workers {
				out = sweepRow(i, out)
			}
			parts[w] = out
		}(w)
	}
	wg.Wait()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]pairSim, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// vsim is VSim(C1, C2) = Σ W_imp(A_i) × SimJ(C1.A_i, C2.A_i) over the
// supertuples' flattened attribute bags (parallel slices in ascending
// attribute position). The fixed accumulation order matters: float addition
// is not associative, so iterating a weights map directly would make the
// last ulp of a similarity depend on map iteration order and break
// bit-identical model snapshots. A nil flat slice means the supertuple has
// no bag for that attribute, matching the map-form absence check.
func vsim(f1, f2 [][]bag.Entry, weights []float64) float64 {
	total := 0.0
	for i := range weights {
		b1, b2 := f1[i], f2[i]
		if b1 == nil || b2 == nil {
			continue
		}
		total += weights[i] * bag.JaccardFlat(b1, b2)
	}
	return total
}

// VSim returns the mined similarity between two values of a categorical
// attribute. Identical values have similarity 1; values unseen in the
// sample have similarity 0 to everything else.
func (e *Estimator) VSim(attr int, v1, v2 string) float64 {
	if v1 == v2 {
		return 1
	}
	row := e.matrices[attr][v1]
	if row == nil {
		return 0
	}
	return row[v2]
}

// MaxVSim returns an upper bound on VSim(attr, v, v') over every value
// v' ≠ v: the largest similarity in v's mined row (0 when v has no similar
// values). Relaxation pruning uses it as the cap on how much similarity a
// dropped categorical attribute can still contribute from a non-identical
// value; it reads the live matrix, so SetVSim feedback is reflected
// immediately.
func (e *Estimator) MaxVSim(attr int, v string) float64 {
	m := 0.0
	for _, s := range e.matrices[attr][v] {
		if s > m {
			m = s
		}
	}
	return m
}

// Matrix returns a deep copy of the pairwise similarity matrix of one
// categorical attribute (v1 → v2 → sim; symmetric, self-pairs omitted).
// Used by model persistence.
func (e *Estimator) Matrix(attr int) map[string]map[string]float64 {
	src := e.matrices[attr]
	out := make(map[string]map[string]float64, len(src))
	for v1, row := range src {
		cp := make(map[string]float64, len(row))
		for v2, s := range row {
			cp[v2] = s
		}
		out[v1] = cp
	}
	return out
}

// FromMatrices reconstructs an estimator from persisted similarity
// matrices, bypassing the supertuple mining pass. The matrices map is keyed
// by attribute position and is used as-is (not copied).
func FromMatrices(sc *relation.Schema, ord *afd.Ordering, matrices map[int]map[string]map[string]float64) *Estimator {
	e := &Estimator{
		Schema:   sc,
		Ordering: ord,
		matrices: make(map[int]map[string]map[string]float64, len(matrices)),
	}
	for _, attr := range sc.Categorical() {
		m := matrices[attr]
		if m == nil {
			m = make(map[string]map[string]float64)
		}
		e.matrices[attr] = m
	}
	return e
}

// SetVSim overrides the mined similarity between two values of a
// categorical attribute (both directions). It is the mutation hook used by
// relevance-feedback tuning (paper §7); sim is clamped to [0, 1] and
// identical values are ignored (self-similarity is always 1).
func (e *Estimator) SetVSim(attr int, v1, v2 string, sim float64) {
	if v1 == v2 {
		return
	}
	if sim < 0 {
		sim = 0
	}
	if sim > 1 {
		sim = 1
	}
	m := e.matrices[attr]
	if m == nil {
		m = make(map[string]map[string]float64)
		e.matrices[attr] = m
	}
	put := func(a, b string) {
		row := m[a]
		if row == nil {
			row = make(map[string]float64)
			m[a] = row
		}
		row[b] = sim
	}
	put(v1, v2)
	put(v2, v1)
}

// ValueSim pairs a value with its similarity to some reference value.
type ValueSim struct {
	Value string
	Sim   float64
}

// TopSimilar returns the n values most similar to v under attr, descending,
// excluding v itself and zero-similarity values. This regenerates the
// paper's Table 3 rows.
func (e *Estimator) TopSimilar(attr int, v string, n int) []ValueSim {
	row := e.matrices[attr][v]
	out := make([]ValueSim, 0, len(row))
	for o, s := range row {
		if s > 0 {
			out = append(out, ValueSim{Value: o, Sim: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].Value < out[j].Value
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Edge is one edge of a value-similarity graph.
type Edge struct {
	A, B string
	Sim  float64
}

// Graph returns the similarity graph of an attribute: all value pairs with
// similarity >= threshold, each pair once (A < B), sorted by descending
// similarity. This regenerates the paper's Figure 5 (Make=Ford's
// neighborhood).
func (e *Estimator) Graph(attr int, threshold float64) []Edge {
	var out []Edge
	for a, row := range e.matrices[attr] {
		for b, s := range row {
			if a < b && s >= threshold {
				out = append(out, Edge{A: a, B: b, Sim: s})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// NumericSim is the paper's numeric similarity 1 − |q−t|/q clamped to
// [0,1]. A zero query value degenerates the ratio, so equality is required
// there.
func NumericSim(q, t float64) float64 {
	if q == 0 {
		if t == 0 {
			return 1
		}
		return 0
	}
	d := math.Abs(q-t) / math.Abs(q)
	if d > 1 {
		d = 1
	}
	return 1 - d
}

// Sim computes Sim(Q, t): the importance-weighted similarity between an
// imprecise query and a candidate tuple over the query's bound attributes.
// Range predicates and comparisons contribute via their boundary value
// (range via its midpoint). Null tuple values contribute 0.
func (e *Estimator) Sim(q *query.Query, t relation.Tuple) float64 {
	bound := q.BoundAttrs()
	if bound.Empty() {
		return 0
	}
	weights := e.Ordering.ImportanceWeights(bound)
	total := 0.0
	for _, p := range q.Preds {
		tv := t[p.Attr]
		if tv.IsNull() {
			continue
		}
		total += weights[p.Attr] * e.predSim(p, tv)
	}
	return total
}

// predSim is one predicate's unweighted similarity term against a tuple
// value — the sim_i of Sim(Q,t) = Σ W_imp(A_i) × sim_i. Shared by Sim and
// SimExplain so a score and its decomposition can never drift apart.
func (e *Estimator) predSim(p query.Predicate, tv relation.Value) float64 {
	typ := e.Schema.Type(p.Attr)
	if p.Op == query.OpIn {
		// Disjunction: the tuple is as similar as its best alternative.
		best := 0.0
		for _, alt := range p.Values {
			var s float64
			if typ == relation.Categorical {
				s = e.VSim(p.Attr, alt.Str, tv.Str)
			} else {
				s = NumericSim(alt.Num, tv.Num)
			}
			if s > best {
				best = s
			}
		}
		return best
	}
	qv := p.Value
	if p.Op == query.OpRange {
		qv = relation.Numv((p.Value.Num + p.Hi.Num) / 2)
	}
	if typ == relation.Categorical {
		return e.VSim(p.Attr, qv.Str, tv.Str)
	}
	return NumericSim(qv.Num, tv.Num)
}

// SimExplain computes Sim(Q, t) together with its per-attribute
// decomposition: one obs.Contribution per predicate of Q, whose Terms
// (weight × sim) sum — in the same floating-point accumulation order Sim
// uses — to the returned total. Predicates over null tuple values appear
// with Sim and Term 0, so the breakdown always covers every bound
// attribute.
func (e *Estimator) SimExplain(q *query.Query, t relation.Tuple) (float64, []obs.Contribution) {
	bound := q.BoundAttrs()
	if bound.Empty() {
		return 0, nil
	}
	weights := e.Ordering.ImportanceWeights(bound)
	contribs := make([]obs.Contribution, 0, len(q.Preds))
	total := 0.0
	for _, p := range q.Preds {
		w := weights[p.Attr]
		c := obs.Contribution{Attr: e.Schema.Attr(p.Attr).Name, Weight: w}
		tv := t[p.Attr]
		if !tv.IsNull() {
			c.Sim = e.predSim(p, tv)
			c.Term = w * c.Sim
			total += c.Term
		}
		contribs = append(contribs, c)
	}
	return total, contribs
}

// SimTuples computes the similarity between two tuples over the given
// attributes, treating the first tuple as a fully-bound query (Algorithm 1
// measures Sim(t, t′) between a base-set tuple and a retrieved tuple).
func (e *Estimator) SimTuples(t1, t2 relation.Tuple, attrs relation.AttrSet) float64 {
	if attrs.Empty() {
		return 0
	}
	weights := e.Ordering.ImportanceWeights(attrs)
	total := 0.0
	for _, a := range attrs.Members() {
		v1, v2 := t1[a], t2[a]
		if v1.IsNull() || v2.IsNull() {
			continue
		}
		if e.Schema.Type(a) == relation.Categorical {
			total += weights[a] * e.VSim(a, v1.Str, v2.Str)
		} else {
			total += weights[a] * NumericSim(v1.Num, v2.Num)
		}
	}
	return total
}

// DescribeNeighborhood renders the top similar values of one AV-pair, in
// the style of the paper's Table 3 / Figure 5 commentary.
func (e *Estimator) DescribeNeighborhood(attr int, v string, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s=%s:", e.Schema.Attr(attr).Name, v)
	for _, vs := range e.TopSimilar(attr, v, n) {
		fmt.Fprintf(&b, " %s(%.3f)", vs.Value, vs.Sim)
	}
	return b.String()
}
