package supertuple

import (
	"strings"
	"testing"

	"aimq/internal/relation"
)

func carSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Attribute{Name: "Make", Type: relation.Categorical},
		relation.Attribute{Name: "Model", Type: relation.Categorical},
		relation.Attribute{Name: "Color", Type: relation.Categorical},
		relation.Attribute{Name: "Price", Type: relation.Numeric},
	)
}

func sampleRel() *relation.Relation {
	r := relation.New(carSchema())
	rows := []struct {
		mk, md, c string
		p         float64
	}{
		{"Ford", "Focus", "White", 15000},
		{"Ford", "Focus", "White", 14000},
		{"Ford", "F150", "Black", 25000},
		{"Toyota", "Camry", "White", 12000},
		{"Toyota", "Camry", "Black", 13000},
		{"Toyota", "Corolla", "Red", 9000},
	}
	for _, row := range rows {
		r.Append(relation.Tuple{relation.Cat(row.mk), relation.Cat(row.md), relation.Cat(row.c), relation.Numv(row.p)})
	}
	return r
}

func TestBuildCountsAndBags(t *testing.T) {
	idx := Builder{Buckets: 4}.Build(sampleRel())
	sc := idx.Schema
	ford := idx.Get(sc.MustIndex("Make"), "Ford")
	if ford == nil {
		t.Fatalf("no supertuple for Make=Ford")
	}
	if ford.Count != 3 {
		t.Errorf("Ford count = %d", ford.Count)
	}
	modelBag := ford.Bags[sc.MustIndex("Model")]
	if modelBag.Count("Focus") != 2 || modelBag.Count("F150") != 1 {
		t.Errorf("Ford model bag = %v", modelBag)
	}
	if _, ok := ford.Bags[sc.MustIndex("Make")]; ok {
		t.Errorf("supertuple bagged its own attribute")
	}
	// Price is bucketed: bag keywords look like "lo-hi".
	priceBag := ford.Bags[sc.MustIndex("Price")]
	if priceBag.Size() != 3 {
		t.Errorf("Ford price bag size = %d", priceBag.Size())
	}
	for kw := range priceBag {
		if !strings.Contains(kw, "-") {
			t.Errorf("price keyword %q not bucketed", kw)
		}
	}
}

func TestNumericBucketingConsistent(t *testing.T) {
	idx := Builder{Buckets: 4}.Build(sampleRel())
	price := idx.Schema.MustIndex("Price")
	// Range is [9000,25000], width 4000: 9000→first, 25000→last (clamped).
	lowest := idx.Keyword(price, relation.Numv(9000))
	if lowest != "9000-13000" {
		t.Errorf("lowest bucket = %q", lowest)
	}
	highest := idx.Keyword(price, relation.Numv(25000))
	if highest != "21000-25000" {
		t.Errorf("highest bucket = %q", highest)
	}
	// Out-of-range values clamp instead of inventing buckets.
	if idx.Keyword(price, relation.Numv(1)) != lowest {
		t.Errorf("below-range value not clamped")
	}
	if idx.Keyword(price, relation.Numv(1e9)) != highest {
		t.Errorf("above-range value not clamped")
	}
	// Categorical keyword passes through.
	if idx.Keyword(idx.Schema.MustIndex("Make"), relation.Cat("Ford")) != "Ford" {
		t.Errorf("categorical keyword mangled")
	}
}

func TestValuesAndPairCount(t *testing.T) {
	idx := Builder{}.Build(sampleRel())
	sc := idx.Schema
	makes := idx.Values(sc.MustIndex("Make"))
	if len(makes) != 2 || makes[0] != "Ford" || makes[1] != "Toyota" {
		t.Errorf("Values(Make) = %v", makes)
	}
	// 2 makes + 4 models + 3 colors = 9 AV-pairs.
	if idx.PairCount() != 9 {
		t.Errorf("PairCount = %d", idx.PairCount())
	}
	if idx.Get(sc.MustIndex("Make"), "DeLorean") != nil {
		t.Errorf("Get of absent value returned a supertuple")
	}
	if idx.Get(sc.MustIndex("Price"), "x") != nil {
		t.Errorf("Get on numeric attribute returned a supertuple")
	}
}

func TestMinSupport(t *testing.T) {
	idx := Builder{MinSupport: 2}.Build(sampleRel())
	sc := idx.Schema
	if idx.Get(sc.MustIndex("Model"), "F150") != nil {
		t.Errorf("MinSupport=2 kept a singleton AV-pair")
	}
	if idx.Get(sc.MustIndex("Model"), "Focus") == nil {
		t.Errorf("MinSupport=2 dropped a supported AV-pair")
	}
}

func TestNullsSkipped(t *testing.T) {
	r := relation.New(carSchema())
	r.Append(relation.Tuple{relation.NullValue, relation.Cat("Focus"), relation.Cat("White"), relation.NullValue})
	r.Append(relation.Tuple{relation.Cat("Ford"), relation.NullValue, relation.Cat("White"), relation.Numv(1000)})
	idx := Builder{}.Build(r)
	sc := idx.Schema
	if len(idx.Values(sc.MustIndex("Make"))) != 1 {
		t.Errorf("null Make indexed")
	}
	ford := idx.Get(sc.MustIndex("Make"), "Ford")
	if ford.Bags[sc.MustIndex("Model")] != nil && ford.Bags[sc.MustIndex("Model")].Size() != 0 {
		t.Errorf("null Model bagged: %v", ford.Bags[sc.MustIndex("Model")])
	}
	focus := idx.Get(sc.MustIndex("Model"), "Focus")
	if focus.Bags[sc.MustIndex("Make")] != nil && focus.Bags[sc.MustIndex("Make")].Size() != 0 {
		t.Errorf("null Make bagged into Focus supertuple")
	}
}

func TestConstantNumericAttribute(t *testing.T) {
	s := relation.MustSchema(
		relation.Attribute{Name: "C", Type: relation.Categorical},
		relation.Attribute{Name: "N", Type: relation.Numeric},
	)
	r := relation.New(s)
	r.Append(relation.Tuple{relation.Cat("a"), relation.Numv(5)})
	r.Append(relation.Tuple{relation.Cat("a"), relation.Numv(5)})
	idx := Builder{}.Build(r) // zero-width range must not divide by zero
	st := idx.Get(0, "a")
	if st == nil || st.Bags[1].Size() != 2 {
		t.Fatalf("constant numeric attribute broke bagging: %+v", st)
	}
}

func TestAVPairAndRender(t *testing.T) {
	idx := Builder{}.Build(sampleRel())
	sc := idx.Schema
	ford := idx.Get(sc.MustIndex("Make"), "Ford")
	if got := ford.Pair.Render(sc); got != "Make=Ford" {
		t.Errorf("AVPair render = %q", got)
	}
	out := ford.Render(sc, 3)
	for _, want := range []string{"Make=Ford", "Model", "Focus:2", "Price"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}
