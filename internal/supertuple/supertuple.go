// Package supertuple builds the paper's AV-pair → supertuple representation
// (§5.1–5.2), the evidence from which categorical value similarity is
// estimated.
//
// An AV-pair is a distinct (categorical attribute, value) combination, e.g.
// Make=Ford. Viewing the AV-pair as a single-attribute selection query, its
// answerset over the probed sample is summarized as a *supertuple*: for
// every other attribute of the relation, a bag of keywords with occurrence
// counts (paper Table 1). Numeric attributes are bucketed into ranges
// before bagging, matching the paper's "Mileage 10k-15k:3, 20k-25k:5"
// rendering — raw continuous values would almost never repeat and so would
// carry no co-occurrence signal.
package supertuple

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"aimq/internal/bag"
	"aimq/internal/relation"
)

// AVPair identifies a categorical attribute-value pair.
type AVPair struct {
	Attr  int
	Value string
}

// Render formats the AV-pair under a schema, e.g. "Make=Ford".
func (p AVPair) Render(s *relation.Schema) string {
	return s.Attr(p.Attr).Name + "=" + p.Value
}

// SuperTuple summarizes the answerset of one AV-pair: one keyword bag per
// relation attribute other than the pair's own.
type SuperTuple struct {
	Pair AVPair
	// Bags maps attribute position → keyword bag. The pair's own attribute
	// has no bag.
	Bags map[int]bag.Bag
	// Count is the number of tuples in the AV-pair's answerset (the
	// pair's support in the sample).
	Count int
}

// Builder constructs supertuples for every AV-pair of a relation sample.
type Builder struct {
	// Buckets is the number of equal-width buckets used to discretize each
	// numeric attribute. Default 10.
	Buckets int
	// MinSupport drops AV-pairs whose answerset is smaller than this; rare
	// values produce unreliable supertuples. Default 1 (keep everything).
	MinSupport int
	// Workers is the number of goroutines indexing the sample. Each worker
	// builds a private partial index over a contiguous chunk of tuples;
	// the partials are merged in chunk order. Because supertuples are pure
	// occurrence counts (integer bag merges commute and numeric bucketing
	// is fixed up front from the whole sample), the merged index is
	// identical to a sequential build for any worker count. Default 1.
	Workers int
}

// Index holds the supertuples of one sample, grouped by attribute.
type Index struct {
	Schema *relation.Schema
	// ByAttr maps a categorical attribute position to its value →
	// supertuple table.
	ByAttr map[int]map[string]*SuperTuple
	// buckets records the numeric discretization used, so queries can be
	// bucketed consistently.
	buckets map[int]bucketing
}

type bucketing struct {
	min, width float64
	n          int
	// labels caches the rendered "lo-hi" bucket names. The indexing loop
	// hits one label per tuple×attribute; formatting them there would make
	// fmt.Sprintf the single hottest call in the learn phase.
	labels []string
}

// label returns the keyword for bucket i without formatting when the cache
// is present (it always is for Build-created indexes; the zero value
// formats on demand).
func (bk bucketing) label(i int) string {
	if i < len(bk.labels) {
		return bk.labels[i]
	}
	lo := bk.min + float64(i)*bk.width
	return fmt.Sprintf("%g-%g", lo, lo+bk.width)
}

// Build scans the sample once and constructs supertuples for all AV-pairs
// of every categorical attribute.
func (b Builder) Build(rel *relation.Relation) *Index {
	buckets := b.Buckets
	if buckets <= 0 {
		buckets = 10
	}
	minSupport := b.MinSupport
	if minSupport < 1 {
		minSupport = 1
	}
	sc := rel.Schema()
	idx := &Index{
		Schema:  sc,
		ByAttr:  make(map[int]map[string]*SuperTuple),
		buckets: make(map[int]bucketing),
	}
	for _, a := range sc.NumericAttrs() {
		min, max, ok := rel.NumericRange(a)
		if !ok {
			continue
		}
		width := (max - min) / float64(buckets)
		if width <= 0 {
			width = 1
		}
		bk := bucketing{min: min, width: width, n: buckets, labels: make([]string, buckets)}
		for i := range bk.labels {
			lo := min + float64(i)*width
			bk.labels[i] = fmt.Sprintf("%g-%g", lo, lo+width)
		}
		idx.buckets[a] = bk
	}
	cats := sc.Categorical()
	for _, a := range cats {
		idx.ByAttr[a] = make(map[string]*SuperTuple)
	}

	tuples := rel.Tuples()
	workers := b.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(tuples) {
		workers = len(tuples)
	}
	if workers <= 1 {
		idx.indexChunk(tuples, cats)
	} else {
		parts := make([]*Index, workers)
		chunk := (len(tuples) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(tuples) {
				hi = len(tuples)
			}
			if lo >= hi {
				break
			}
			p := &Index{
				Schema:  sc,
				ByAttr:  make(map[int]map[string]*SuperTuple, len(cats)),
				buckets: idx.buckets, // read-only after this point
			}
			for _, a := range cats {
				p.ByAttr[a] = make(map[string]*SuperTuple)
			}
			parts[w] = p
			wg.Add(1)
			go func(p *Index, lo, hi int) {
				defer wg.Done()
				p.indexChunk(tuples[lo:hi], cats)
			}(p, lo, hi)
		}
		wg.Wait()
		for _, p := range parts {
			if p != nil {
				idx.mergeFrom(p, cats)
			}
		}
	}

	if minSupport > 1 {
		for _, table := range idx.ByAttr {
			for v, st := range table {
				if st.Count < minSupport {
					delete(table, v)
				}
			}
		}
	}
	return idx
}

// indexChunk folds a slice of tuples into the index: one supertuple per
// AV-pair seen, one keyword-bag increment per co-occurring attribute value.
// Each tuple's keywords are resolved once up front — every categorical
// attribute's supertuple bags the same co-occurring keywords, so resolving
// them inside the per-pair loop would redo the work len(cats) times.
func (x *Index) indexChunk(tuples []relation.Tuple, cats []int) {
	arity := x.Schema.Arity()
	kws := make([]string, arity)
	null := make([]bool, arity)
	for _, t := range tuples {
		for o := 0; o < arity; o++ {
			if null[o] = t[o].IsNull(); !null[o] {
				kws[o] = x.Keyword(o, t[o])
			}
		}
		for _, a := range cats {
			if null[a] {
				continue
			}
			v := t[a]
			st := x.ByAttr[a][v.Str]
			if st == nil {
				st = &SuperTuple{
					Pair: AVPair{Attr: a, Value: v.Str},
					Bags: make(map[int]bag.Bag, arity-1),
				}
				x.ByAttr[a][v.Str] = st
			}
			st.Count++
			for o := 0; o < arity; o++ {
				if o == a || null[o] {
					continue
				}
				bg := st.Bags[o]
				if bg == nil {
					bg = bag.New()
					st.Bags[o] = bg
				}
				bg.Add(kws[o])
			}
		}
	}
}

// mergeFrom folds a partial index built from one chunk into x. Supports
// and bag counts add; absent supertuples and bags are adopted wholesale
// (the partial is not used afterwards).
func (x *Index) mergeFrom(p *Index, cats []int) {
	for _, a := range cats {
		dst := x.ByAttr[a]
		for v, st := range p.ByAttr[a] {
			have := dst[v]
			if have == nil {
				dst[v] = st
				continue
			}
			have.Count += st.Count
			for o, bg := range st.Bags {
				if have.Bags[o] == nil {
					have.Bags[o] = bg
				} else {
					have.Bags[o].Merge(bg)
				}
			}
		}
	}
}

// Keyword converts an attribute value into the keyword used inside bags:
// the raw string for categorical attributes, the bucket label for numeric
// ones.
func (x *Index) Keyword(attr int, v relation.Value) string {
	if x.Schema.Type(attr) == relation.Categorical {
		return v.Str
	}
	bk, ok := x.buckets[attr]
	if !ok {
		return v.Render(relation.Numeric)
	}
	i := int(math.Floor((v.Num - bk.min) / bk.width))
	if i < 0 {
		i = 0
	}
	if i >= bk.n {
		i = bk.n - 1
	}
	return bk.label(i)
}

// Get returns the supertuple for the AV-pair (attr, value), or nil if the
// value never occurred (or fell below MinSupport).
func (x *Index) Get(attr int, value string) *SuperTuple {
	table := x.ByAttr[attr]
	if table == nil {
		return nil
	}
	return table[value]
}

// Values returns the values with supertuples for the given attribute,
// sorted for deterministic iteration.
func (x *Index) Values(attr int) []string {
	table := x.ByAttr[attr]
	out := make([]string, 0, len(table))
	for v := range table {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// PairCount returns the total number of AV-pairs indexed. The paper notes
// similarity-estimation time is driven by this count, not the sample size
// (§6.2, Table 2 discussion).
func (x *Index) PairCount() int {
	n := 0
	for _, table := range x.ByAttr {
		n += len(table)
	}
	return n
}

// Render formats a supertuple like the paper's Table 1: one row per
// attribute with the top keywords of its bag.
func (st *SuperTuple) Render(s *relation.Schema, topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "supertuple for %s (%d tuples)\n", st.Pair.Render(s), st.Count)
	attrs := make([]int, 0, len(st.Bags))
	for a := range st.Bags {
		attrs = append(attrs, a)
	}
	sort.Ints(attrs)
	for _, a := range attrs {
		fmt.Fprintf(&b, "  %-12s %s\n", s.Attr(a).Name, strings.Join(st.Bags[a].Top(topN), ", "))
	}
	return b.String()
}
