package supertuple

import (
	"math/rand"
	"reflect"
	"testing"

	"aimq/internal/relation"
)

// wideRel generates a relation large and varied enough that a parallel
// build actually splits work across chunks: three categorical attributes
// with skewed value frequencies plus two numeric ones (so bucketing is
// exercised), with some planted nulls.
func wideRel(n int, seed int64) *relation.Relation {
	sc := relation.MustSchema(
		relation.Attribute{Name: "Make", Type: relation.Categorical},
		relation.Attribute{Name: "Model", Type: relation.Categorical},
		relation.Attribute{Name: "Color", Type: relation.Categorical},
		relation.Attribute{Name: "Year", Type: relation.Numeric},
		relation.Attribute{Name: "Price", Type: relation.Numeric},
	)
	rng := rand.New(rand.NewSource(seed))
	makes := []string{"Ford", "Toyota", "Honda", "BMW"}
	models := []string{"Focus", "F150", "Camry", "Corolla", "Civic", "Accord", "M3"}
	colors := []string{"White", "Black", "Red", "Blue", "Silver"}
	r := relation.New(sc)
	for i := 0; i < n; i++ {
		color := relation.Cat(colors[rng.Intn(len(colors))])
		if rng.Intn(17) == 0 {
			color = relation.NullValue
		}
		r.Append(relation.Tuple{
			relation.Cat(makes[rng.Intn(len(makes))]),
			relation.Cat(models[rng.Intn(len(models))]),
			color,
			relation.Numv(float64(1995 + rng.Intn(12))),
			relation.Numv(float64(5000 + rng.Intn(25000))),
		})
	}
	return r
}

// TestBuildParallelDeterministic asserts the tentpole determinism claim:
// the index built with 1, 4 and 8 workers is identical — same AV-pairs,
// same supports, same bags, same numeric bucketing — because partials are
// pure counts merged in chunk order. Run under -race this also exercises
// the worker partitioning for data races.
func TestBuildParallelDeterministic(t *testing.T) {
	rel := wideRel(5000, 7)
	base := Builder{Buckets: 8, MinSupport: 2, Workers: 1}.Build(rel)
	for _, workers := range []int{4, 8} {
		got := Builder{Buckets: 8, MinSupport: 2, Workers: workers}.Build(rel)
		if !reflect.DeepEqual(base.ByAttr, got.ByAttr) {
			t.Errorf("Workers=%d produced a different index than Workers=1", workers)
		}
		if !reflect.DeepEqual(base.buckets, got.buckets) {
			t.Errorf("Workers=%d produced different numeric bucketing", workers)
		}
		if base.PairCount() != got.PairCount() {
			t.Errorf("Workers=%d PairCount = %d, want %d", workers, got.PairCount(), base.PairCount())
		}
	}
}

// TestBuildParallelMoreWorkersThanTuples covers the degenerate partitions:
// worker count above the tuple count, and a single-tuple relation.
func TestBuildParallelMoreWorkersThanTuples(t *testing.T) {
	rel := wideRel(3, 9)
	seq := Builder{Workers: 1}.Build(rel)
	par := Builder{Workers: 64}.Build(rel)
	if !reflect.DeepEqual(seq.ByAttr, par.ByAttr) {
		t.Errorf("oversized worker pool changed the index")
	}
}
