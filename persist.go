package aimq

import (
	"fmt"

	"aimq/internal/model"
)

// SaveModel persists the learned model (attribute ordering, importance
// weights and mined value similarities) as JSON, so future sessions can
// LoadModel instead of re-running the offline Learn phase.
func (db *DB) SaveModel(path string) error {
	if !db.Learned() {
		return ErrNotLearned
	}
	return model.Save(path, model.Capture(db.ord, db.est))
}

// LoadModel restores a model saved by SaveModel, skipping Learn. The
// model's schema must match the source's. After LoadModel the session
// answers queries and accepts feedback as usual; only the supertuple
// diagnostics (SuperTuple) are unavailable, because the snapshot stores the
// distilled similarities rather than the raw co-occurrence bags — call
// Learn if you need them.
func (db *DB) LoadModel(path string) error {
	snap, err := model.Load(path)
	if err != nil {
		return err
	}
	ord, est, err := snap.Restore(db.Schema())
	if err != nil {
		return fmt.Errorf("aimq: %w", err)
	}
	db.ord = ord
	db.est = est
	db.idx = nil
	db.probed = nil
	return nil
}
