package aimq

import (
	"fmt"
	"strings"

	"aimq/internal/core"
	"aimq/internal/query"
	"aimq/internal/relation"
)

// Answers is a ranked result set for one imprecise query.
type Answers struct {
	// Columns are the attribute names, in schema order.
	Columns []string
	// Rows are the answers, best first.
	Rows []Row
	// BaseQuery is the precise query the answers were grown from (after
	// any generalization).
	BaseQuery string
	// Work summarizes the source-side cost of answering.
	Work Work
	// Trace lists the relaxation steps taken, when the session was opened
	// WithTrace.
	Trace []TraceStep
}

// TraceStep is one recorded relaxation step.
type TraceStep struct {
	Query     string
	Extracted int
	Qualified int
	Failed    bool
}

// Row is one answer tuple with its similarity to the query.
type Row struct {
	// Values renders each attribute in schema order ("NULL" for missing).
	Values []string
	// Similarity is Sim(Q, t) ∈ [0, 1].
	Similarity float64
}

// Work summarizes query-answering cost.
type Work struct {
	QueriesIssued   int
	TuplesExtracted int
	TuplesQualified int
	// StepsPruned is how many relaxation queries the engine proved
	// pointless (Sim upper bound below Tsim) and skipped without issuing.
	StepsPruned int
}

// Ask answers an imprecise query written in the CLI syntax, e.g.
//
//	Model like Camry, Price like 10000
//	Make = Ford, Mileage between 40000 and 60000
//
// Attribute names resolve against the source schema; "like" marks imprecise
// constraints (on both categorical and numeric attributes).
func (db *DB) Ask(text string) (*Answers, error) {
	if !db.Learned() {
		return nil, ErrNotLearned
	}
	q, err := query.Parse(db.Schema(), text)
	if err != nil {
		return nil, err
	}
	return db.AskQuery(q)
}

// AskQuery answers a structured query.
func (db *DB) AskQuery(q *query.Query) (*Answers, error) {
	if !db.Learned() {
		return nil, ErrNotLearned
	}
	if len(q.Preds) == 0 {
		return nil, fmt.Errorf("aimq: empty query")
	}
	db.log.Record(q)
	res, err := db.engine().Answer(q)
	if err != nil {
		return nil, err
	}
	return db.convert(res), nil
}

// AskTuple finds the tuples most similar to a reference tuple — "more like
// this" over the whole relation.
func (db *DB) AskTuple(t relation.Tuple) (*Answers, error) {
	if !db.Learned() {
		return nil, ErrNotLearned
	}
	q := query.FromTuple(db.Schema(), t)
	for i := range q.Preds {
		q.Preds[i].Op = query.OpLike
	}
	return db.AskQuery(q)
}

func (db *DB) convert(res *core.Result) *Answers {
	sc := db.Schema()
	out := &Answers{
		Columns:   sc.Names(),
		BaseQuery: res.Precise.String(),
		Work: Work{
			QueriesIssued:   res.Work.QueriesIssued,
			TuplesExtracted: res.Work.TuplesExtracted,
			TuplesQualified: res.Work.TuplesQualified,
			StepsPruned:     res.Work.StepsPruned,
		},
	}
	for _, a := range res.Answers {
		row := Row{Similarity: a.Sim, Values: make([]string, len(a.Tuple))}
		for i, v := range a.Tuple {
			row.Values[i] = v.Render(sc.Type(i))
		}
		out.Rows = append(out.Rows, row)
	}
	for _, step := range res.Trace {
		out.Trace = append(out.Trace, TraceStep{
			Query:     step.Query,
			Extracted: step.Extracted,
			Qualified: step.Qualified,
			Failed:    step.Failed,
		})
	}
	return out
}

// ExplainTrace renders the recorded relaxation steps, most productive
// first; zero-yield steps are summarized rather than listed.
func (a *Answers) ExplainTrace() string {
	if len(a.Trace) == 0 {
		return "no trace recorded (open the session with WithTrace(true))\n"
	}
	var b strings.Builder
	quiet, failed := 0, 0
	for _, s := range a.Trace {
		switch {
		case s.Failed:
			failed++
		case s.Qualified == 0:
			quiet++
		default:
			fmt.Fprintf(&b, "  %-60s extracted %4d, qualified %3d\n", s.Query, s.Extracted, s.Qualified)
		}
	}
	fmt.Fprintf(&b, "  (%d further steps yielded nothing new; %d failed)\n", quiet, failed)
	return b.String()
}

// String renders the answers as an aligned text table.
func (a *Answers) String() string {
	var b strings.Builder
	widths := make([]int, len(a.Columns))
	for i, c := range a.Columns {
		widths[i] = len(c)
	}
	for _, r := range a.Rows {
		for i, v := range r.Values {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	fmt.Fprintf(&b, "%-6s", "sim")
	for i, c := range a.Columns {
		fmt.Fprintf(&b, " %-*s", widths[i], c)
	}
	b.WriteString("\n")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%.3f ", r.Similarity)
		for i, v := range r.Values {
			fmt.Fprintf(&b, " %-*s", widths[i], v)
		}
		b.WriteString("\n")
	}
	return b.String()
}
