// Command aimq-serve is the AIMQ answering daemon: it loads (or learns and
// persists) the mined model once, then serves imprecise queries over HTTP
// with an LRU answer cache, single-flight deduplication, per-request
// deadlines, Prometheus metrics, end-to-end query tracing and graceful
// shutdown.
//
// Over a local CSV:
//
//	aimq-serve -data cardb.csv -model cardb.model.json -addr :8090
//
// Over a remote autonomous source (an aimqd instance), probing it to learn:
//
//	aimq-serve -source http://127.0.0.1:8080 -model cardb.model.json
//
// Then:
//
//	curl 'http://127.0.0.1:8090/answer?q=Model+like+Camry,+Price+like+10000&k=5'
//	curl 'http://127.0.0.1:8090/answer?q=Model+like+Camry&explain=true'
//	curl 'http://127.0.0.1:8090/debug/traces'
//	curl 'http://127.0.0.1:8090/metrics'
//	curl 'http://127.0.0.1:8090/healthz'
//
// With -debug-addr a second, private listener serves the full diagnostics
// surface (pprof, expvar, traces, the learning profile):
//
//	aimq-serve -data cardb.csv -debug-addr 127.0.0.1:8091
//	curl 'http://127.0.0.1:8091/debug/'
//
// The source is wrapped in retry + circuit-breaker middleware by default
// (tune with -retry-attempts, -retry-base, -breaker-failures, -breaker-open;
// disable with -resilient=false). With -cache-ttl set, expired cache entries
// are served marked "stale" while the breaker is open — see
// docs/ROBUSTNESS.md.
//
// Logs are structured (log/slog); every request carries a generated ID that
// is echoed back as X-Request-ID and stamped on its trace.
//
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aimq/internal/audit"
	"aimq/internal/core"
	"aimq/internal/drift"
	"aimq/internal/lifecycle"
	"aimq/internal/model"
	"aimq/internal/relation"
	"aimq/internal/service"
	"aimq/internal/version"
	"aimq/internal/webdb"
)

func main() {
	data := flag.String("data", "", "CSV file to serve answers over")
	source := flag.String("source", "", "base URL of a remote aimqd source (alternative to -data)")
	modelPath := flag.String("model", "", "model snapshot path: loaded when present, else learned and saved here")
	addr := flag.String("addr", ":8090", "listen address")
	debugAddr := flag.String("debug-addr", "", "private listen address for pprof/expvar/traces ('' = disabled)")
	k := flag.Int("k", 10, "default answers per query")
	maxK := flag.Int("max-k", 100, "cap on client-requested k")
	tsim := flag.Float64("tsim", 0.5, "default similarity threshold")
	cacheSize := flag.Int("cache", 1024, "LRU answer cache entries")
	cacheTTL := flag.Duration("cache-ttl", 0, "answer freshness window; expired entries are served marked stale while the source is degraded (0 = never expire)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request answer deadline")
	resilient := flag.Bool("resilient", true, "wrap the source in retry + circuit-breaker middleware")
	retryAttempts := flag.Int("retry-attempts", 3, "attempts per source query, including the first (with -resilient)")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "base backoff between retries, doubled per attempt with full jitter (with -resilient)")
	breakerFailures := flag.Int("breaker-failures", 5, "consecutive source failures that open the circuit breaker (with -resilient)")
	breakerOpen := flag.Duration("breaker-open", 10*time.Second, "how long an open breaker sheds load before half-open probing (with -resilient)")
	failDegrade := flag.Bool("fail-degrade", true, "return partial ranked results when relaxation queries fail (false = abort the request)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
	maxQPB := flag.Int("max-queries-per-base", 0, "cap relaxation queries per base tuple (0 = unlimited)")
	sampleSize := flag.Int("sample", 0, "cap the learning sample (0 = all)")
	terr := flag.Float64("terr", 0.15, "TANE error threshold for learning")
	seed := flag.Int64("seed", 1, "probing/sampling seed")
	probeWorkers := flag.Int("probe-workers", 1, "concurrent spanning probes and supertuple-build goroutines while learning")
	legacyEngine := flag.Bool("legacy-engine", false, "serve a local -data relation through the legacy row-at-a-time engine instead of the columnar bitmap engine")
	prune := flag.Bool("prune", true, "skip relaxation queries whose Sim upper bound is already below tsim")
	keyPruneErr := flag.Float64("key-prune-max-error", 0, "also skip relaxation queries that keep the mined best key bound, when the key's g3 error is at or below this (0 = exact keys only)")
	cacheSnapshot := flag.String("cache-snapshot", "", "path for the hot-query cache snapshot: warmed from at startup, rewritten at shutdown ('' = disabled)")
	traceRing := flag.Int("trace-ring", 64, "traces kept by /debug/traces (recent and slowest each; negative disables)")
	traceSample := flag.Int("trace-sample", 0, "head-sample 1 in N computed answers into the trace ring (<2 = every one)")
	flightThreshold := flag.Duration("flight-threshold", 0, "tail-latency flight recorder: retain any computed answer slower than this, regardless of sampling (0 = off)")
	flightRing := flag.Int("flight-ring", 32, "traces kept by the flight recorder (recent and slowest each)")
	slowQuery := flag.Duration("slow-query", 500*time.Millisecond, "log answers slower than this at WARN (negative disables)")
	auditLog := flag.String("audit-log", "", "durable query audit log path (JSONL wide events; '' = disabled)")
	auditSample := flag.Int("audit-sample", 0, "audit 1 in N computed answers (<2 = every one)")
	auditMaxBytes := flag.Int64("audit-max-bytes", 64<<20, "rotate the audit log when it reaches this size")
	auditMaxAge := flag.Duration("audit-max-age", 0, "rotate the audit log after this age (0 = size-only rotation)")
	driftInterval := flag.Duration("drift-interval", 0, "re-probe the source and compare against the model's drift baseline at this interval (0 = disabled)")
	driftSample := flag.Int("drift-sample", 2000, "fresh-sample cap per drift re-probe")
	driftPSIWarn := flag.Float64("drift-psi-warn", 0.25, "per-attribute PSI at or above which a drift tick is a breach")
	refreshInterval := flag.Duration("refresh-interval", 0, "re-learn the model at this interval and hot-swap it in after validation (0 = drift-triggered only)")
	refreshOnBreach := flag.Bool("refresh-on-breach", true, "re-learn and hot-swap when the drift monitor breaches (needs -drift-interval)")
	refreshBackoff := flag.Duration("refresh-backoff", 30*time.Second, "base backoff after a failed or rejected re-learn, doubled per consecutive failure with full jitter")
	refreshBackoffMax := flag.Duration("refresh-backoff-max", 15*time.Minute, "backoff cap between re-learn attempts")
	refreshShadowSample := flag.Int("refresh-shadow-sample", 64, "recent audited queries replayed against a candidate model before promotion (needs -audit-log; negative disables validation)")
	refreshMaxZeroRise := flag.Float64("refresh-max-zero-rise", 0.25, "reject a candidate whose shadow-replay zero-answer rate rises more than this")
	refreshMaxSimDrop := flag.Float64("refresh-max-sim-drop", 0.10, "reject a candidate whose shadow-replay mean similarity drops more than this")
	modelKeep := flag.Int("model-keep", 2, "previous model generations kept beside -model on promote (rollback restores the newest)")
	refreshProbation := flag.Int("refresh-probation", 200, "computed answers watched after a promote; a zero-answer collapse inside the window rolls the model back (0 = no auto-rollback)")
	refreshRollbackZeroRate := flag.Float64("refresh-rollback-zero-rate", 0.6, "post-promote zero-answer rate at or above which the promote is rolled back")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	showVersion := flag.Bool("version", false, "print version and exit")
	modelInfo := flag.Bool("model-info", false, "print the model's fingerprint, learn timestamp and age, then exit (loads or learns the model first)")
	flag.Parse()

	if *showVersion {
		fmt.Printf("aimq-serve %s (%s)\n", version.Version, version.GoVersion())
		return
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	if err := run(config{
		data: *data, source: *source, model: *modelPath, addr: *addr,
		debugAddr: *debugAddr,
		k:         *k, maxK: *maxK, tsim: *tsim, cacheSize: *cacheSize,
		cacheTTL: *cacheTTL,
		timeout:  *timeout, drain: *drain, maxQPB: *maxQPB,
		sampleSize: *sampleSize, terr: *terr, seed: *seed, probeWorkers: *probeWorkers,
		prune: *prune, keyPruneErr: *keyPruneErr, cacheSnapshot: *cacheSnapshot,
		traceRing: *traceRing, traceSample: *traceSample,
		flightThreshold: *flightThreshold, flightRing: *flightRing,
		slowQuery: *slowQuery,
		resilient: *resilient, retryAttempts: *retryAttempts, retryBase: *retryBase,
		breakerFailures: *breakerFailures, breakerOpen: *breakerOpen,
		failDegrade:  *failDegrade,
		legacyEngine: *legacyEngine,
		auditLog:     *auditLog, auditSample: *auditSample,
		auditMaxBytes: *auditMaxBytes, auditMaxAge: *auditMaxAge,
		driftInterval: *driftInterval, driftSample: *driftSample,
		driftPSIWarn:        *driftPSIWarn,
		refreshInterval:     *refreshInterval,
		refreshOnBreach:     *refreshOnBreach,
		refreshBackoff:      *refreshBackoff,
		refreshBackoffMax:   *refreshBackoffMax,
		refreshShadowSample: *refreshShadowSample,
		refreshMaxZeroRise:  *refreshMaxZeroRise,
		refreshMaxSimDrop:   *refreshMaxSimDrop,
		modelKeep:           *modelKeep,
		refreshProbation:    *refreshProbation,
		refreshZeroRate:     *refreshRollbackZeroRate,
		modelInfo:           *modelInfo,
	}, logger); err != nil {
		fmt.Fprintln(os.Stderr, "aimq-serve:", err)
		os.Exit(1)
	}
}

type config struct {
	data, source, model, addr  string
	debugAddr                  string
	k, maxK, cacheSize, maxQPB int
	tsim, terr                 float64
	timeout, drain             time.Duration
	sampleSize, probeWorkers   int
	seed                       int64
	traceRing                  int
	traceSample                int
	flightThreshold            time.Duration
	flightRing                 int
	slowQuery                  time.Duration
	cacheTTL                   time.Duration
	resilient                  bool
	retryAttempts              int
	retryBase                  time.Duration
	breakerFailures            int
	breakerOpen                time.Duration
	failDegrade                bool
	prune                      bool
	keyPruneErr                float64
	cacheSnapshot              string
	legacyEngine               bool
	auditLog                   string
	auditSample                int
	auditMaxBytes              int64
	auditMaxAge                time.Duration
	driftInterval              time.Duration
	driftSample                int
	driftPSIWarn               float64
	refreshInterval            time.Duration
	refreshOnBreach            bool
	refreshBackoff             time.Duration
	refreshBackoffMax          time.Duration
	refreshShadowSample        int
	refreshMaxZeroRise         float64
	refreshMaxSimDrop          float64
	modelKeep                  int
	refreshProbation           int
	refreshZeroRate            float64
	modelInfo                  bool
}

func run(c config, logger *slog.Logger) error {
	logger.Info("aimq-serve starting", "version", version.Version, "go", version.GoVersion())

	// -model-info over a saved snapshot needs no source at all; only fall
	// through to the full learn path when asked to build one.
	if c.modelInfo && c.data == "" && c.source == "" {
		if c.model == "" {
			return fmt.Errorf("-model-info needs -model (or -data/-source to learn one)")
		}
		snap, err := model.Load(c.model)
		if err != nil {
			return err
		}
		printModelInfo(service.ModelInfo{
			Fingerprint:   snap.Fingerprint(),
			LearnedAtUnix: snap.LearnedAtUnix,
			SampleSize:    snap.SampleSize,
			Pivot:         snap.Pivot,
		})
		return nil
	}

	var src webdb.Source
	switch {
	case c.data != "":
		rel, err := relation.LoadCSV(c.data)
		if err != nil {
			return err
		}
		logger.Info("serving local relation",
			"tuples", rel.Size(), "schema", rel.Schema().String(), "file", c.data,
			"engine", map[bool]string{false: "columnar", true: "legacy"}[c.legacyEngine])
		if c.legacyEngine {
			src = webdb.NewLocalLegacy(rel)
		} else {
			src = webdb.NewLocal(rel)
		}
	case c.source != "":
		client, err := webdb.NewClient(c.source, nil)
		if err != nil {
			return err
		}
		logger.Info("answering over remote source",
			"url", c.source, "schema", client.Schema().String())
		src = client
	default:
		return fmt.Errorf("need -data or -source")
	}

	if c.resilient {
		src = webdb.NewResilient(src, webdb.ResilientConfig{
			Retry: webdb.RetryPolicy{
				MaxAttempts: c.retryAttempts,
				BaseDelay:   c.retryBase,
			},
			Breaker: webdb.BreakerConfig{
				FailureThreshold: c.breakerFailures,
				OpenTimeout:      c.breakerOpen,
			},
		})
		logger.Info("resilience middleware on",
			"retry_attempts", c.retryAttempts, "retry_base", c.retryBase,
			"breaker_failures", c.breakerFailures, "breaker_open", c.breakerOpen)
	}

	start := time.Now()
	m, err := service.LoadOrBuildModel(c.model, src, service.LearnConfig{
		Seed:       c.seed,
		SampleSize: c.sampleSize,
		Terr:       c.terr,
		Workers:    c.probeWorkers,
	})
	if err != nil {
		return err
	}
	info := m.Info()
	if c.modelInfo {
		printModelInfo(info)
		return nil
	}
	learnStats := m.Stats
	if m.Built {
		logger.Info("learned model", "elapsed", time.Since(start).Round(time.Millisecond),
			"probed_tuples", learnStats.ProbedTuples, "sample", learnStats.SampleSize,
			"afds", learnStats.AFDs, "akeys", learnStats.AKeys,
			"fingerprint", info.Fingerprint)
		if c.model != "" {
			logger.Info("model saved", "path", c.model)
		}
	} else {
		logger.Info("model loaded", "path", c.model,
			"elapsed", time.Since(start).Round(time.Millisecond),
			"fingerprint", info.Fingerprint)
	}

	var auditW *audit.Writer
	if c.auditLog != "" {
		auditW, err = audit.NewWriter(audit.Config{
			Path:       c.auditLog,
			SampleRate: c.auditSample,
			MaxBytes:   c.auditMaxBytes,
			MaxAge:     c.auditMaxAge,
			Header: audit.Header{
				Service:            version.Version,
				ModelFingerprint:   info.Fingerprint,
				ModelLearnedAtUnix: info.LearnedAtUnix,
				Engine: audit.EngineConfig{
					K:                 c.k,
					Tsim:              c.tsim,
					MaxQueriesPerBase: c.maxQPB,
					DisablePruning:    !c.prune,
					KeyPruneMaxError:  c.keyPruneErr,
					FailDegrade:       c.failDegrade,
				},
			},
		})
		if err != nil {
			return fmt.Errorf("audit log: %w", err)
		}
		defer func() {
			if cerr := auditW.Close(); cerr != nil {
				logger.Warn("audit log close failed", "error", cerr)
			}
			st := auditW.Stats()
			logger.Info("audit log closed", "path", c.auditLog,
				"written", st.Written, "dropped", st.Dropped, "rotations", st.Rotations)
		}()
		logger.Info("audit log on", "path", c.auditLog,
			"sample", c.auditSample, "max_bytes", c.auditMaxBytes, "max_age", c.auditMaxAge)
	}

	onFailure := core.FailAbort
	if c.failDegrade {
		onFailure = core.FailDegrade
	}
	svc := service.New(src, m.Est, &core.Guided{Ord: m.Ord}, service.Config{
		Engine: core.Config{
			K:                 c.k,
			Tsim:              c.tsim,
			MaxQueriesPerBase: c.maxQPB,
			OnFailure:         onFailure,
			DisablePruning:    !c.prune,
			KeyPruneMaxError:  c.keyPruneErr,
		},
		CacheSize:       c.cacheSize,
		CacheTTL:        c.cacheTTL,
		RequestTimeout:  c.timeout,
		MaxK:            c.maxK,
		TraceRing:       c.traceRing,
		TraceSample:     c.traceSample,
		FlightThreshold: c.flightThreshold,
		FlightRing:      c.flightRing,
		SlowQuery:       c.slowQuery,
		Logger:          logger,
		Audit:           auditW,
	})
	svc.SetLearnStats(learnStats)
	svc.SetModelInfo(info)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var mon *drift.Monitor
	if c.driftInterval > 0 {
		if m.Snap == nil || m.Snap.Drift == nil {
			logger.Warn("drift monitoring requested but the model has no drift baseline (snapshot predates drift profiles); re-learn to enable")
		} else {
			mon = drift.NewMonitor(src, m.Snap.Drift, drift.MonitorConfig{
				Interval:     c.driftInterval,
				SampleLimit:  c.driftSample,
				PSIWarn:      c.driftPSIWarn,
				Seed:         c.seed,
				ProbeWorkers: c.probeWorkers,
			})
			svc.AttachDriftMonitor(mon)
			logger.Info("drift monitor on", "interval", c.driftInterval,
				"sample", c.driftSample, "psi_warn", c.driftPSIWarn)
		}
	}

	// The self-healing loop: breaches (and/or a timer) re-learn the model in
	// the background, shadow-validate it, persist it with generation keeping
	// and hot-swap it in — never disturbing in-flight answers.
	if c.refreshInterval > 0 || (mon != nil && c.refreshOnBreach) {
		lc := service.LearnConfig{
			Seed:       c.seed,
			SampleSize: c.sampleSize,
			Terr:       c.terr,
			Workers:    c.probeWorkers,
		}
		ctl := lifecycle.New(svc, src,
			func() (*service.Model, error) { return service.BuildModel(src, lc) },
			lifecycle.Config{
				Interval: c.refreshInterval,
				Retry: webdb.RetryPolicy{
					BaseDelay: c.refreshBackoff,
					MaxDelay:  c.refreshBackoffMax,
				},
				ShadowSample: c.refreshShadowSample,
				MaxZeroRise:  c.refreshMaxZeroRise,
				MaxSimDrop:   c.refreshMaxSimDrop,
				AuditPath:    c.auditLog,
				Engine: core.Config{
					K:                 c.k,
					Tsim:              c.tsim,
					MaxQueriesPerBase: c.maxQPB,
					OnFailure:         onFailure,
					DisablePruning:    !c.prune,
					KeyPruneMaxError:  c.keyPruneErr,
				},
				ModelPath:         c.model,
				Keep:              c.modelKeep,
				ProbationWindow:   c.refreshProbation,
				ProbationZeroRate: c.refreshZeroRate,
				Logger:            logger,
			})
		ctl.SetServing(m)
		if mon != nil && c.refreshOnBreach {
			ctl.AttachMonitor(mon)
		}
		svc.AttachLifecycle(ctl)
		go ctl.Run(ctx)
		logger.Info("model refresh controller on",
			"interval", c.refreshInterval, "on_breach", mon != nil && c.refreshOnBreach,
			"shadow_sample", c.refreshShadowSample, "model_keep", c.modelKeep,
			"probation", c.refreshProbation)
	}
	if mon != nil {
		go mon.Run(ctx)
	}

	if c.cacheSnapshot != "" {
		if snap, err := service.LoadCacheSnapshot(c.cacheSnapshot); err == nil {
			warmStart := time.Now()
			warmed, werr := svc.WarmCache(ctx, snap)
			logger.Info("cache warmed from snapshot", "path", c.cacheSnapshot,
				"entries", len(snap.Entries), "warmed", warmed,
				"elapsed", time.Since(warmStart).Round(time.Millisecond))
			if werr != nil && !errors.Is(werr, context.Canceled) {
				logger.Warn("cache warming stopped early", "error", werr)
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			logger.Warn("cache snapshot unreadable, starting cold", "path", c.cacheSnapshot, "error", err)
		}
	}

	if c.debugAddr != "" {
		dbg := &http.Server{Addr: c.debugAddr, Handler: svc.DebugHandler()}
		go func() {
			logger.Info("debug surface listening", "addr", c.debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "error", err)
			}
		}()
		go func() {
			<-ctx.Done()
			shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = dbg.Shutdown(shutCtx)
		}()
	}

	logger.Info("answering", "addr", c.addr, "cache_entries", c.cacheSize,
		"timeout", c.timeout, "trace_ring", c.traceRing, "trace_sample", c.traceSample,
		"flight_threshold", c.flightThreshold, "slow_query", c.slowQuery)
	err = svc.Run(ctx, c.addr, c.drain)
	if err == nil {
		logger.Info("drained and stopped")
	}
	if c.cacheSnapshot != "" {
		snap := svc.SnapshotCache(0)
		if serr := service.SaveCacheSnapshot(c.cacheSnapshot, snap); serr != nil {
			logger.Warn("cache snapshot not saved", "path", c.cacheSnapshot, "error", serr)
		} else {
			logger.Info("cache snapshot saved", "path", c.cacheSnapshot, "entries", len(snap.Entries))
		}
	}
	return err
}

// printModelInfo renders the -model-info identity card.
func printModelInfo(info service.ModelInfo) {
	fmt.Printf("fingerprint  %s\n", info.Fingerprint)
	if !info.LearnedAt().IsZero() {
		fmt.Printf("learned_at   %s\n", info.LearnedAt().UTC().Format(time.RFC3339))
		fmt.Printf("age          %s\n", time.Since(info.LearnedAt()).Round(time.Second))
	}
	if info.SampleSize != 0 {
		fmt.Printf("sample_size  %d\n", info.SampleSize)
	}
	if info.Pivot != "" {
		fmt.Printf("pivot        %s\n", info.Pivot)
	}
	fmt.Printf("built        %t\n", info.Built)
}
