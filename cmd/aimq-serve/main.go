// Command aimq-serve is the AIMQ answering daemon: it loads (or learns and
// persists) the mined model once, then serves imprecise queries over HTTP
// with an LRU answer cache, single-flight deduplication, per-request
// deadlines, Prometheus metrics and graceful shutdown.
//
// Over a local CSV:
//
//	aimq-serve -data cardb.csv -model cardb.model.json -addr :8090
//
// Over a remote autonomous source (an aimqd instance), probing it to learn:
//
//	aimq-serve -source http://127.0.0.1:8080 -model cardb.model.json
//
// Then:
//
//	curl 'http://127.0.0.1:8090/answer?q=Model+like+Camry,+Price+like+10000&k=5'
//	curl 'http://127.0.0.1:8090/metrics'
//	curl 'http://127.0.0.1:8090/healthz'
//
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aimq/internal/core"
	"aimq/internal/relation"
	"aimq/internal/service"
	"aimq/internal/webdb"
)

func main() {
	data := flag.String("data", "", "CSV file to serve answers over")
	source := flag.String("source", "", "base URL of a remote aimqd source (alternative to -data)")
	modelPath := flag.String("model", "", "model snapshot path: loaded when present, else learned and saved here")
	addr := flag.String("addr", ":8090", "listen address")
	k := flag.Int("k", 10, "default answers per query")
	maxK := flag.Int("max-k", 100, "cap on client-requested k")
	tsim := flag.Float64("tsim", 0.5, "default similarity threshold")
	cacheSize := flag.Int("cache", 1024, "LRU answer cache entries")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request answer deadline")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
	maxQPB := flag.Int("max-queries-per-base", 0, "cap relaxation queries per base tuple (0 = unlimited)")
	sampleSize := flag.Int("sample", 0, "cap the learning sample (0 = all)")
	terr := flag.Float64("terr", 0.15, "TANE error threshold for learning")
	seed := flag.Int64("seed", 1, "probing/sampling seed")
	probeWorkers := flag.Int("probe-workers", 1, "concurrent spanning probes while learning")
	flag.Parse()

	if err := run(config{
		data: *data, source: *source, model: *modelPath, addr: *addr,
		k: *k, maxK: *maxK, tsim: *tsim, cacheSize: *cacheSize,
		timeout: *timeout, drain: *drain, maxQPB: *maxQPB,
		sampleSize: *sampleSize, terr: *terr, seed: *seed, probeWorkers: *probeWorkers,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "aimq-serve:", err)
		os.Exit(1)
	}
}

type config struct {
	data, source, model, addr  string
	k, maxK, cacheSize, maxQPB int
	tsim, terr                 float64
	timeout, drain             time.Duration
	sampleSize, probeWorkers   int
	seed                       int64
}

func run(c config) error {
	var src webdb.Source
	switch {
	case c.data != "":
		rel, err := relation.LoadCSV(c.data)
		if err != nil {
			return err
		}
		log.Printf("serving %d tuples of %s from %s", rel.Size(), rel.Schema(), c.data)
		src = webdb.NewLocal(rel)
	case c.source != "":
		client, err := webdb.NewClient(c.source, nil)
		if err != nil {
			return err
		}
		log.Printf("answering over remote source %s (%s)", c.source, client.Schema())
		src = client
	default:
		return fmt.Errorf("need -data or -source")
	}

	start := time.Now()
	ord, est, built, err := service.LoadOrBuildModel(c.model, src, service.LearnConfig{
		Seed:       c.seed,
		SampleSize: c.sampleSize,
		Terr:       c.terr,
		Workers:    c.probeWorkers,
	})
	if err != nil {
		return err
	}
	if built {
		log.Printf("learned model in %s", time.Since(start).Round(time.Millisecond))
		if c.model != "" {
			log.Printf("model saved to %s", c.model)
		}
	} else {
		log.Printf("model loaded from %s in %s", c.model, time.Since(start).Round(time.Millisecond))
	}

	svc := service.New(src, est, &core.Guided{Ord: ord}, service.Config{
		Engine: core.Config{
			K:                 c.k,
			Tsim:              c.tsim,
			MaxQueriesPerBase: c.maxQPB,
		},
		CacheSize:      c.cacheSize,
		RequestTimeout: c.timeout,
		MaxK:           c.maxK,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("answering on %s (cache %d entries, timeout %s)", c.addr, c.cacheSize, c.timeout)
	err = svc.Run(ctx, c.addr, c.drain)
	if err == nil {
		log.Printf("drained and stopped")
	}
	return err
}
