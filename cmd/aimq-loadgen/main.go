// Command aimq-loadgen drives concurrent imprecise-query load against a
// running aimq-serve instance and reports throughput, latency percentiles
// and the service-side cache hit ratio.
//
//	aimq-loadgen -url http://127.0.0.1:8090 \
//	    -q "Model like Camry, Price like 10000; Make like Ford" \
//	    -c 16 -d 10s
//
// Queries are separated by ";" and issued round-robin per worker, so a
// multi-query workload exercises both the cache-hit and relaxation paths.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aimq/internal/bench"
	"aimq/internal/obs"
)

// slowReq remembers one slow request so the report can name the trace to
// pull from the service's /debug/traces (the generator sends a traceparent
// with every request, so the service-side trace carries this exact ID).
type slowReq struct {
	traceID string
	query   string
	elapsed time.Duration
}

// slowTracker keeps the n slowest requests seen, guarded by its own mutex
// (contention is negligible: insertion only happens when a request beats the
// current floor).
type slowTracker struct {
	mu   sync.Mutex
	n    int
	reqs []slowReq
}

func (st *slowTracker) observe(r slowReq) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.reqs) < st.n {
		st.reqs = append(st.reqs, r)
	} else if r.elapsed > st.reqs[len(st.reqs)-1].elapsed {
		st.reqs[len(st.reqs)-1] = r
	} else {
		return
	}
	sort.Slice(st.reqs, func(i, j int) bool { return st.reqs[i].elapsed > st.reqs[j].elapsed })
}

func (st *slowTracker) snapshot() []slowReq {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]slowReq(nil), st.reqs...)
}

func main() {
	base := flag.String("url", "http://127.0.0.1:8090", "aimq-serve base URL")
	queries := flag.String("q", "", "queries to issue, separated by \";\"")
	conc := flag.Int("c", 8, "concurrent workers")
	total := flag.Int("n", 0, "total requests (0 = run for -d)")
	dur := flag.Duration("d", 10*time.Second, "load duration when -n is 0")
	k := flag.Int("k", 10, "answers per query")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	seed := flag.Int64("seed", 1, "worker query-order shuffle seed")
	flag.Parse()

	if err := run(*base, *queries, *conc, *total, *dur, *k, *timeout, *seed, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aimq-loadgen:", err)
		os.Exit(1)
	}
}

type counters struct {
	ok, errs, cached, timeouts, answers, zeroAnswer atomic.Int64
}

func run(base, queries string, conc, total int, dur time.Duration, k int, timeout time.Duration, seed int64, w io.Writer) error {
	var qs []string
	for _, q := range strings.Split(queries, ";") {
		if q = strings.TrimSpace(q); q != "" {
			qs = append(qs, q)
		}
	}
	if len(qs) == 0 {
		return fmt.Errorf("need at least one query via -q")
	}
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: timeout}

	before, err := scrapeMetrics(client, base)
	if err != nil {
		return fmt.Errorf("service not reachable at %s: %w", base, err)
	}

	var (
		cnt      counters
		issued   atomic.Int64
		mu       sync.Mutex
		lats     bench.Sketch
		wg       sync.WaitGroup
		deadline = time.Now().Add(dur)
		slow     = slowTracker{n: 5}
	)
	for wk := 0; wk < conc; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(wk)))
			// Per-worker sketch, merged under the lock at the end: recording a
			// latency never contends with another worker mid-run.
			var local bench.Sketch
			for i := 0; ; i++ {
				if total > 0 {
					if issued.Add(1) > int64(total) {
						break
					}
				} else if time.Now().After(deadline) {
					break
				}
				q := qs[rng.Intn(len(qs))]
				target := base + "/answer?" + url.Values{
					"q": {q}, "k": {strconv.Itoa(k)},
				}.Encode()
				req, err := http.NewRequest(http.MethodGet, target, nil)
				if err != nil {
					cnt.errs.Add(1)
					continue
				}
				// Every request opens its own distributed trace: the service
				// joins it (so its /debug/traces entries carry this trace ID),
				// and the slow-request report below names the IDs to look up.
				tc := obs.NewTraceContext()
				req.Header.Set(obs.TraceparentHeader, tc.Header())
				start := time.Now()
				resp, err := client.Do(req)
				elapsed := time.Since(start)
				if err != nil {
					cnt.errs.Add(1)
					continue
				}
				var body struct {
					Cached  bool              `json:"cached"`
					Answers []json.RawMessage `json:"answers"`
				}
				_ = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					cnt.ok.Add(1)
					cnt.answers.Add(int64(len(body.Answers)))
					if len(body.Answers) == 0 {
						cnt.zeroAnswer.Add(1)
					}
					if body.Cached {
						cnt.cached.Add(1)
					}
					local.ObserveDuration(elapsed)
					if !body.Cached {
						slow.observe(slowReq{traceID: tc.TraceID, query: q, elapsed: elapsed})
					}
				case resp.StatusCode == http.StatusGatewayTimeout:
					cnt.timeouts.Add(1)
				default:
					cnt.errs.Add(1)
				}
			}
			mu.Lock()
			lats.Merge(&local)
			mu.Unlock()
		}(wk)
	}
	loadStart := time.Now()
	wg.Wait()
	elapsed := time.Since(loadStart)

	after, scrapeErr := scrapeMetrics(client, base)

	ok := cnt.ok.Load()
	fmt.Fprintf(w, "workload: %d workers, %d quer%s, %s\n",
		conc, len(qs), map[bool]string{true: "y", false: "ies"}[len(qs) == 1], elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "requests: %d ok, %d timeouts, %d errors\n", ok, cnt.timeouts.Load(), cnt.errs.Load())

	// Nothing succeeded: report why and stop before any latency math — there
	// are no samples to take percentiles of and no hit ratio to compute.
	if ok == 0 {
		if scrapeErr != nil {
			fmt.Fprintf(w, "service /metrics scrape failed: %v\n", scrapeErr)
		}
		return fmt.Errorf("no successful requests (%d timeouts, %d errors)",
			cnt.timeouts.Load(), cnt.errs.Load())
	}

	if elapsed > 0 {
		fmt.Fprintf(w, "throughput: %.1f req/s\n", float64(ok)/elapsed.Seconds())
	}
	if lats.Count() > 0 {
		pct := func(p float64) time.Duration {
			return time.Duration(lats.Quantile(p) * float64(time.Second))
		}
		fmt.Fprintf(w, "latency: p50 %s  p90 %s  p95 %s  p99 %s  max %s\n",
			pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
			pct(0.95).Round(time.Microsecond), pct(0.99).Round(time.Microsecond),
			pct(1).Round(time.Microsecond))
	}
	fmt.Fprintf(w, "client-observed cache hits: %d/%d (%.1f%%)\n",
		cnt.cached.Load(), ok, 100*float64(cnt.cached.Load())/float64(ok))
	// The longitudinal answer-quality view the audit log tracks server-side,
	// observed from the client: how often an imprecise query came back empty,
	// and how many ranked answers a query yielded on average.
	fmt.Fprintf(w, "answer quality: %.2f answers/query, zero-answer rate %.1f%% (%d/%d)\n",
		float64(cnt.answers.Load())/float64(ok),
		100*float64(cnt.zeroAnswer.Load())/float64(ok), cnt.zeroAnswer.Load(), ok)
	if slowest := slow.snapshot(); len(slowest) > 0 {
		fmt.Fprintf(w, "slowest computed answers (trace IDs resolvable at %s/debug/traces):\n", base)
		for _, r := range slowest {
			fmt.Fprintf(w, "  %s  trace=%s  %q\n", r.elapsed.Round(time.Microsecond), r.traceID, r.query)
		}
	}
	if scrapeErr == nil {
		hits, misses := after.hits-before.hits, after.misses-before.misses
		lookups := hits + misses
		fmt.Fprintf(w, "service /metrics: cache hits %d, misses %d (hit ratio %.1f%%)\n",
			hits, misses, 100*float64(hits)/float64(max64(lookups, 1)))
		// The paper's §6.3 efficiency view of the run: how many boolean
		// source queries and extracted tuples the service spent per answer
		// it returned (cached answers cost nothing, so a warm workload
		// drives these toward zero).
		relaxQ := after.relaxQueries - before.relaxQueries
		tuples := after.tuples - before.tuples
		answers := max64(cnt.answers.Load(), 1)
		fmt.Fprintf(w, "service work: %d source queries (%.2f/answer), %d tuples extracted (%.2f/answer)\n",
			relaxQ, float64(relaxQ)/float64(answers), tuples, float64(tuples)/float64(answers))
		// Which model answered: fingerprint + generation, and whether a
		// hot-swap (background re-learn promote or rollback) landed mid-run.
		if after.fingerprint != "" {
			fmt.Fprintf(w, "model: fingerprint %s, generation %d\n", after.fingerprint, after.generation)
			if before.fingerprint != "" &&
				(before.fingerprint != after.fingerprint || before.generation != after.generation) {
				fmt.Fprintf(w, "model swapped during the run: %s (gen %d) -> %s (gen %d), %d swap%s\n",
					before.fingerprint, before.generation, after.fingerprint, after.generation,
					after.swaps-before.swaps, map[bool]string{true: "", false: "s"}[after.swaps-before.swaps == 1])
			}
		}
		printStageReport(w, before, after)
	} else {
		fmt.Fprintf(w, "service /metrics scrape failed: %v\n", scrapeErr)
	}
	return nil
}

// printStageReport prints the per-stage time the service spent answering
// during the run, derived from the aimq_service_stage_seconds histograms
// (deltas between the scrape before and after the load).
func printStageReport(w io.Writer, before, after serviceCounters) {
	var stages []string
	for name := range after.stageSum {
		if after.stageCount[name]-before.stageCount[name] > 0 {
			stages = append(stages, name)
		}
	}
	if len(stages) == 0 {
		return
	}
	sort.Strings(stages)
	fmt.Fprintf(w, "service stage timings (computed answers only):\n")
	for _, name := range stages {
		n := after.stageCount[name] - before.stageCount[name]
		sum := after.stageSum[name] - before.stageSum[name]
		fmt.Fprintf(w, "  %-10s %6d runs, avg %s, total %s\n", name, n,
			time.Duration(sum/float64(n)*float64(time.Second)).Round(time.Microsecond),
			time.Duration(sum*float64(time.Second)).Round(time.Millisecond))
	}
}

// serviceCounters is one scrape of the counters the report needs: the cache
// counters plus the per-stage histogram sums and counts.
type serviceCounters struct {
	hits, misses int64
	relaxQueries int64
	tuples       int64
	fingerprint  string
	generation   int64
	swaps        int64
	stageSum     map[string]float64
	stageCount   map[string]int64
}

// scrapeMetrics reads the service's Prometheus text endpoint.
func scrapeMetrics(client *http.Client, base string) (serviceCounters, error) {
	out := serviceCounters{
		stageSum:   map[string]float64{},
		stageCount: map[string]int64{},
	}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		switch {
		case name == "aimq_service_cache_hits_total":
			out.hits = int64(v)
		case name == "aimq_service_cache_misses_total":
			out.misses = int64(v)
		case name == "aimq_service_relaxation_queries_total":
			out.relaxQueries = int64(v)
		case name == "aimq_service_tuples_extracted_total":
			out.tuples = int64(v)
		case name == "aimq_model_generation":
			out.generation = int64(v)
		case name == "aimq_model_swaps_total":
			out.swaps = int64(v)
		case strings.HasPrefix(name, "aimq_model_version{"):
			out.fingerprint = seriesLabel(name, "version")
		case strings.HasPrefix(name, "aimq_service_stage_seconds_sum{"):
			if stage := stageLabel(name); stage != "" {
				out.stageSum[stage] = v
			}
		case strings.HasPrefix(name, "aimq_service_stage_seconds_count{"):
			if stage := stageLabel(name); stage != "" {
				out.stageCount[stage] = int64(v)
			}
		}
	}
	return out, sc.Err()
}

// stageLabel extracts the stage="..." label value from a series name.
func stageLabel(series string) string {
	return seriesLabel(series, "stage")
}

// seriesLabel extracts one label's value from a Prometheus series name.
func seriesLabel(series, label string) string {
	marker := label + `="`
	i := strings.Index(series, marker)
	if i < 0 {
		return ""
	}
	rest := series[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
