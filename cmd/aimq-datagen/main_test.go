package main

import (
	"os"
	"strings"
	"testing"

	"aimq/internal/relation"
)

func TestRunCarDB(t *testing.T) {
	out := t.TempDir() + "/cars.csv"
	if err := run("cardb", 500, 7, out); err != nil {
		t.Fatalf("run: %v", err)
	}
	rel, err := relation.LoadCSV(out)
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if rel.Size() != 500 || rel.Schema().Arity() != 7 {
		t.Errorf("generated %d tuples, arity %d", rel.Size(), rel.Schema().Arity())
	}
}

func TestRunCensus(t *testing.T) {
	out := t.TempDir() + "/census.csv"
	if err := run("census", 400, 8, out); err != nil {
		t.Fatalf("run: %v", err)
	}
	rel, err := relation.LoadCSV(out)
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if rel.Size() != 400 || rel.Schema().Arity() != 13 {
		t.Errorf("generated %d tuples, arity %d", rel.Size(), rel.Schema().Arity())
	}
	classes, err := os.ReadFile(out + ".classes")
	if err != nil {
		t.Fatalf("classes sidecar: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(classes)), "\n")
	if len(lines) != 400 {
		t.Errorf("classes sidecar has %d lines", len(lines))
	}
	for _, l := range lines {
		if l != ">50K" && l != "<=50K" {
			t.Fatalf("bad class label %q", l)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", 10, 1, t.TempDir()+"/x.csv"); err == nil {
		t.Errorf("unknown dataset accepted")
	}
	if err := run("cardb", 10, 1, "/nonexistent-dir/x.csv"); err == nil {
		t.Errorf("unwritable path accepted")
	}
	if err := run("census", 10, 1, "/nonexistent-dir/x.csv"); err == nil {
		t.Errorf("unwritable census path accepted")
	}
}
