// Command aimq-datagen generates the synthetic evaluation datasets (CarDB
// and CensusDB) as CSV files loadable by the other tools.
//
// Usage:
//
//	aimq-datagen -dataset cardb  -n 100000 -seed 2006 -out cardb.csv
//	aimq-datagen -dataset census -n 45000  -seed 2007 -out census.csv
//
// For the census dataset the income class labels are written to a sidecar
// file <out>.classes, one label per line, aligned with the data rows.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"aimq/internal/datagen"
	"aimq/internal/relation"
)

func main() {
	dataset := flag.String("dataset", "cardb", "dataset to generate: cardb or census")
	n := flag.Int("n", 100000, "number of tuples")
	seed := flag.Int64("seed", 2006, "generation seed")
	out := flag.String("out", "", "output CSV path (default <dataset>.csv)")
	flag.Parse()

	if *out == "" {
		*out = *dataset + ".csv"
	}
	if err := run(*dataset, *n, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "aimq-datagen:", err)
		os.Exit(1)
	}
}

func run(dataset string, n int, seed int64, out string) error {
	switch dataset {
	case "cardb":
		db := datagen.GenerateCarDB(n, seed)
		if err := relation.SaveCSV(out, db.Rel); err != nil {
			return err
		}
		fmt.Printf("wrote %d tuples of %s to %s\n", db.Rel.Size(), db.Rel.Schema(), out)
	case "census":
		db := datagen.GenerateCensusDB(n, seed)
		if err := relation.SaveCSV(out, db.Rel); err != nil {
			return err
		}
		classPath := out + ".classes"
		f, err := os.Create(classPath)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		for _, c := range db.Class {
			fmt.Fprintln(w, c)
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d tuples to %s (classes: %s, %.1f%% >50K)\n",
			db.Rel.Size(), out, classPath, 100*db.HighIncomeFraction())
	default:
		return fmt.Errorf("unknown dataset %q (want cardb or census)", dataset)
	}
	return nil
}
