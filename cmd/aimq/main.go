// Command aimq answers imprecise queries over a CSV-backed or remote
// database from the command line.
//
// One-shot:
//
//	aimq -data cardb.csv -q "Model like Camry, Price like 10000"
//
// Interactive (REPL):
//
//	aimq -data cardb.csv
//	aimq> Model like Camry, Price like 10000
//	aimq> .order            — show the learned attribute importance
//	aimq> .similar Make Ford — show mined similar values
//	aimq> .quit
//
// Against a remote autonomous source served by aimqd:
//
//	aimq -url http://127.0.0.1:8080 -q "Make like Ford"
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"aimq"
)

func main() {
	data := flag.String("data", "", "CSV file backing the database")
	url := flag.String("url", "", "base URL of a remote aimqd source (alternative to -data)")
	q := flag.String("q", "", "one-shot query; omit for interactive mode")
	k := flag.Int("k", 10, "number of answers")
	tsim := flag.Float64("tsim", 0.5, "similarity threshold")
	terr := flag.Float64("terr", 0.15, "TANE error threshold")
	sampleSize := flag.Int("sample", 0, "cap the learning sample (0 = all)")
	seed := flag.Int64("seed", 1, "sampling seed")
	flag.Parse()

	if err := run(*data, *url, *q, *k, *tsim, *terr, *sampleSize, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "aimq:", err)
		os.Exit(1)
	}
}

func run(data, url, q string, k int, tsim, terr float64, sampleSize int, seed int64) error {
	opts := []aimq.Option{
		aimq.WithTopK(k),
		aimq.WithThreshold(tsim),
		aimq.WithErrorThreshold(terr),
		aimq.WithSeed(seed),
	}
	if sampleSize > 0 {
		opts = append(opts, aimq.WithSampleSize(sampleSize))
	}

	var db *aimq.DB
	var err error
	switch {
	case data != "":
		db, err = aimq.OpenCSV(data, opts...)
	case url != "":
		db, err = aimq.Connect(url, nil, opts...)
	default:
		return fmt.Errorf("need -data or -url")
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "learning attribute importance and value similarities...\n")
	if err := db.Learn(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "learned from %d sample tuples over %s\n", db.Sample().Size(), db.Schema())

	if q != "" {
		return answer(db, os.Stdout, q)
	}
	return repl(db, os.Stdin, os.Stdout)
}

func answer(db *aimq.DB, w io.Writer, q string) error {
	ans, err := db.Ask(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "base query: %s\n", ans.BaseQuery)
	fmt.Fprint(w, ans)
	fmt.Fprintf(w, "(%d queries issued, %d tuples extracted, %d qualified)\n",
		ans.Work.QueriesIssued, ans.Work.TuplesExtracted, ans.Work.TuplesQualified)
	return nil
}

// repl runs the interactive loop over the given streams (parameterized for
// tests).
func repl(db *aimq.DB, in io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(in)
	var lastQuery string
	var lastAns *aimq.Answers
	feedback := func(arg string, relevant bool) {
		if lastAns == nil {
			fmt.Fprintln(w, "no previous query to give feedback on")
			return
		}
		n, err := strconv.Atoi(strings.TrimSpace(arg))
		if err != nil || n < 1 || n > len(lastAns.Rows) {
			fmt.Fprintf(w, "usage: .good N / .bad N with N in 1..%d (rows of the last answer)\n", len(lastAns.Rows))
			return
		}
		if err := db.Feedback(lastQuery, lastAns.Rows[n-1].Values, relevant); err != nil {
			fmt.Fprintln(w, "error:", err)
			return
		}
		fmt.Fprintf(w, "feedback applied to row %d\n", n)
	}
	fmt.Fprint(w, "aimq> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return nil
		case line == ".order":
			model, err := db.DescribeModel()
			if err != nil {
				fmt.Fprintln(w, "error:", err)
			} else {
				fmt.Fprint(w, model)
			}
		case strings.HasPrefix(line, ".similar "):
			fields := strings.Fields(line)
			if len(fields) < 3 {
				fmt.Fprintln(w, "usage: .similar ATTR VALUE")
				break
			}
			sims, err := db.SimilarValues(fields[1], strings.Join(fields[2:], " "), 10)
			if err != nil {
				fmt.Fprintln(w, "error:", err)
				break
			}
			for _, s := range sims {
				fmt.Fprintf(w, "  %-20s %.3f\n", s.Value, s.Similarity)
			}
		case strings.HasPrefix(line, ".super "):
			fields := strings.Fields(line)
			if len(fields) < 3 {
				fmt.Fprintln(w, "usage: .super ATTR VALUE")
				break
			}
			st, err := db.SuperTuple(fields[1], strings.Join(fields[2:], " "), 8)
			if err != nil {
				fmt.Fprintln(w, "error:", err)
				break
			}
			fmt.Fprint(w, st)
		case strings.HasPrefix(line, ".good "):
			feedback(strings.TrimPrefix(line, ".good "), true)
		case strings.HasPrefix(line, ".bad "):
			feedback(strings.TrimPrefix(line, ".bad "), false)
		case strings.HasPrefix(line, ".adapt"):
			alpha := 0.3
			if arg := strings.TrimSpace(strings.TrimPrefix(line, ".adapt")); arg != "" {
				a, err := strconv.ParseFloat(arg, 64)
				if err != nil {
					fmt.Fprintln(w, "usage: .adapt [ALPHA]")
					break
				}
				alpha = a
			}
			if err := db.AdaptToWorkload(alpha); err != nil {
				fmt.Fprintln(w, "error:", err)
			} else {
				fmt.Fprintf(w, "importance blended toward the session workload (alpha %.2f, %d queries)\n",
					alpha, db.WorkloadQueries())
			}
		case strings.HasPrefix(line, "."):
			fmt.Fprintln(w, "commands: .order | .similar ATTR VALUE | .super ATTR VALUE | .good N | .bad N | .adapt [ALPHA] | .quit")
		default:
			ans, err := db.Ask(line)
			if err != nil {
				fmt.Fprintln(w, "error:", err)
				break
			}
			lastQuery, lastAns = line, ans
			fmt.Fprintf(w, "base query: %s\n", ans.BaseQuery)
			fmt.Fprint(w, ans)
			fmt.Fprintf(w, "(%d queries issued, %d tuples extracted, %d qualified)\n",
				ans.Work.QueriesIssued, ans.Work.TuplesExtracted, ans.Work.TuplesQualified)
		}
		fmt.Fprint(w, "aimq> ")
	}
	return sc.Err()
}
