package main

import (
	"bytes"
	"strings"
	"testing"

	"aimq"
	"aimq/internal/datagen"
	"aimq/internal/relation"
)

func learned(t *testing.T) *aimq.DB {
	t.Helper()
	gen := datagen.GenerateCarDB(2000, 13)
	db := aimq.Open(gen.Rel, aimq.WithSample(gen.Rel), aimq.WithSeed(1))
	if err := db.Learn(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestAnswerWriter(t *testing.T) {
	db := learned(t)
	var out bytes.Buffer
	if err := answer(db, &out, "Model like Camry, Price like 9000"); err != nil {
		t.Fatalf("answer: %v", err)
	}
	s := out.String()
	for _, want := range []string{"base query:", "Camry", "queries issued"} {
		if !strings.Contains(s, want) {
			t.Errorf("answer output missing %q:\n%s", want, s)
		}
	}
	if err := answer(db, &out, "Ghost like x"); err == nil {
		t.Errorf("bad query accepted")
	}
}

func TestREPL(t *testing.T) {
	db := learned(t)
	script := strings.Join([]string{
		"",                   // blank line ignored
		".order",             // model description
		".similar Make Ford", // mined neighborhood
		".similar Make",      // usage error (needs a value)
		".super Make Ford",   // supertuple
		".super Make",        // usage error (needs a value)
		".similar Ghost x",   // error path
		".unknown",           // help
		"Model like Civic",   // a real query
		"Nonsense ??",        // query error path
		".quit",
	}, "\n") + "\n"
	var out bytes.Buffer
	if err := repl(db, strings.NewReader(script), &out); err != nil {
		t.Fatalf("repl: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"relaxation order", // .order
		"Toyota",           // Ford's neighbors include Toyota
		"usage: .similar ATTR VALUE",
		"Make=Ford", // supertuple header
		"usage: .super ATTR VALUE",
		"error:",    // ghost attribute
		"commands:", // help
		"Civic",     // query answers
	} {
		if !strings.Contains(s, want) {
			t.Errorf("repl output missing %q", want)
		}
	}
}

func TestREPLQuitImmediately(t *testing.T) {
	db := learned(t)
	var out bytes.Buffer
	if err := repl(db, strings.NewReader(".exit\n"), &out); err != nil {
		t.Fatalf("repl: %v", err)
	}
	if !strings.HasPrefix(out.String(), "aimq> ") {
		t.Errorf("no prompt printed")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "", "q", 10, 0.5, 0.15, 0, 1); err == nil {
		t.Errorf("missing -data/-url accepted")
	}
	if err := run("/does/not/exist.csv", "", "q", 10, 0.5, 0.15, 0, 1); err == nil {
		t.Errorf("missing csv accepted")
	}
}

func TestRunOneShot(t *testing.T) {
	gen := datagen.GenerateCarDB(1500, 17)
	path := t.TempDir() + "/cars.csv"
	if err := relation.SaveCSV(path, gen.Rel); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", "Model like Camry", 5, 0.5, 0.15, 1000, 3); err != nil {
		t.Fatalf("one-shot run: %v", err)
	}
}

func TestREPLFeedbackAndAdapt(t *testing.T) {
	db := learned(t)
	script := strings.Join([]string{
		".good 1", // no previous query yet
		".adapt",  // no workload yet → error
		"Model like Camry, Price like 9000",
		".good 1", // accept the top answer
		".bad 99", // out of range
		".bad x",  // not a number
		".good 2",
		".adapt 0.4",     // now there is a workload
		".adapt notanum", // usage
		".quit",
	}, "\n") + "\n"
	var out bytes.Buffer
	if err := repl(db, strings.NewReader(script), &out); err != nil {
		t.Fatalf("repl: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"no previous query to give feedback on",
		"error:", // .adapt before any Ask
		"feedback applied to row 1",
		"usage: .good N / .bad N",
		"feedback applied to row 2",
		"importance blended toward the session workload",
		"usage: .adapt [ALPHA]",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("repl output missing %q", want)
		}
	}
}
