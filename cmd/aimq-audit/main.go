// Command aimq-audit is the offline auditor over the durable query log that
// aimq-serve -audit-log writes: one JSONL wide-event per computed answer.
//
// Summarize a log (answer quality, latency, relaxation depth):
//
//	aimq-audit report audit.jsonl audit.jsonl.*
//
// Replay the recorded queries against a live service and diff the answer
// sets and Sim scores against the recorded baseline:
//
//	aimq-audit replay -url http://127.0.0.1:8090 audit.jsonl
//
// Replay in-process against a source and saved model — no service needed;
// on an unchanged model and source the replay reproduces the recorded
// answers bit-identically, so any diff is a real quality delta:
//
//	aimq-audit replay -data cardb.csv -model cardb.model.json audit.jsonl
//
// Exit status: 0 when replay found no diffs (or for report), 1 on usage or
// I/O errors, 2 when replay found changed or errored queries — so a CI job
// can gate a model refresh on last week's production traffic.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"aimq/internal/audit"
	"aimq/internal/core"
	"aimq/internal/model"
	"aimq/internal/relation"
	"aimq/internal/version"
	"aimq/internal/webdb"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(1)
	}
	var err error
	switch os.Args[1] {
	case "report":
		err = runReport(os.Args[2:])
	case "replay":
		err = runReplay(os.Args[2:])
	case "version", "-version", "--version":
		fmt.Printf("aimq-audit %s (%s)\n", version.Version, version.GoVersion())
	default:
		usage()
		os.Exit(1)
	}
	if err != nil {
		var ec exitCode
		if errorsAs(err, &ec) {
			os.Exit(int(ec))
		}
		fmt.Fprintln(os.Stderr, "aimq-audit:", err)
		os.Exit(1)
	}
}

// exitCode is an error that only carries a process exit status (the message
// was already printed as part of the report).
type exitCode int

func (e exitCode) Error() string { return fmt.Sprintf("exit %d", int(e)) }

func errorsAs(err error, target *exitCode) bool {
	if ec, ok := err.(exitCode); ok {
		*target = ec
		return true
	}
	return false
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  aimq-audit report  [-json] <log-file>...
  aimq-audit replay  [-json] (-url BASE | -data CSV -model SNAPSHOT) <log-file>...`)
}

func runReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the summary as JSON")
	_ = fs.Parse(args)
	lg, err := readLogs(fs.Args())
	if err != nil {
		return err
	}
	sum := audit.Summarize(lg.Events)
	if *asJSON {
		return printJSON(map[string]any{"header": lg.Header, "summary": sum, "truncated": lg.Truncated})
	}
	printHeader(lg)
	fmt.Printf("events            %d\n", sum.Events)
	fmt.Printf("zero-answer rate  %.3f (%d queries)\n", sum.ZeroAnswerRate, sum.ZeroAnswer)
	fmt.Printf("answers/query     %.2f\n", sum.AnswersPerQuery)
	fmt.Printf("mean top sim      %.4f\n", sum.MeanTopSim)
	fmt.Printf("mean sim          %.4f\n", sum.MeanSim)
	fmt.Printf("latency mean/max  %.2fms / %.2fms\n", sum.MeanLatencyMs, sum.MaxLatencyMs)
	fmt.Printf("source queries    %d (%d tuples extracted)\n", sum.QueriesIssued, sum.TuplesExtracted)
	if sum.Degraded > 0 || sum.Partial > 0 {
		fmt.Printf("degraded/partial  %d / %d\n", sum.Degraded, sum.Partial)
	}
	if len(sum.DepthDist) > 0 {
		fmt.Printf("relaxation depth  ")
		for i, d := range sum.Depths() {
			if i > 0 {
				fmt.Printf("  ")
			}
			fmt.Printf("%d:%d", d, sum.DepthDist[d])
		}
		fmt.Println()
	}
	return nil
}

func runReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the diff report as JSON")
	baseURL := fs.String("url", "", "replay against a live service at this base URL")
	data := fs.String("data", "", "replay in-process over this CSV source")
	modelPath := fs.String("model", "", "model snapshot for in-process replay")
	timeout := fs.Duration("timeout", 30*time.Second, "per-query replay deadline")
	maxDiffs := fs.Int("max-diffs", 10, "changed queries to print (text output)")
	_ = fs.Parse(args)
	lg, err := readLogs(fs.Args())
	if err != nil {
		return err
	}
	if len(lg.Events) == 0 {
		return fmt.Errorf("no answer events in log")
	}

	var target audit.Target
	modelMatch := true
	switch {
	case *baseURL != "":
		target = &audit.HTTPTarget{Base: *baseURL}
	case *data != "" && *modelPath != "":
		rel, err := relation.LoadCSV(*data)
		if err != nil {
			return err
		}
		src := webdb.NewLocal(rel)
		snap, err := model.Load(*modelPath)
		if err != nil {
			return err
		}
		ord, est, err := snap.Restore(src.Schema())
		if err != nil {
			return err
		}
		et := &audit.EngineTarget{
			Src: src, Est: est, Relaxer: &core.Guided{Ord: ord}, Timeout: *timeout,
		}
		if lg.Header != nil {
			et.Engine = lg.Header.Engine.CoreConfig()
			if lg.Header.ModelFingerprint != "" {
				modelMatch = lg.Header.ModelFingerprint == snap.Fingerprint()
			}
		}
		target = et
	default:
		return fmt.Errorf("replay needs -url, or -data with -model")
	}

	rep := audit.Replay(lg.Events, target)
	rep.ModelMatch = modelMatch
	if *asJSON {
		if err := printJSON(rep); err != nil {
			return err
		}
	} else {
		printHeader(lg)
		if !modelMatch {
			fmt.Println("MODEL CHANGED: target model fingerprint differs from the log header;")
			fmt.Println("diffs below measure the model change, not a regression.")
		}
		fmt.Printf("events            %d\n", rep.Events)
		fmt.Printf("replayed          %d (%d errors)\n", rep.Replayed, rep.Errors)
		fmt.Printf("identical         %d\n", rep.Identical)
		fmt.Printf("changed           %d\n", rep.Changed)
		fmt.Printf("zero-answer rate  recorded %.3f → replayed %.3f\n",
			rep.ZeroAnswerRateRecorded, rep.ZeroAnswerRateReplayed)
		fmt.Printf("answers/query     recorded %.2f → replayed %.2f\n",
			rep.AnswersPerQueryRec, rep.AnswersPerQueryRep)
		fmt.Printf("sim shift         max %.6f mean %.6f\n", rep.SimShiftMax, rep.SimShiftMean)
		for i, d := range rep.Diffs {
			if i >= *maxDiffs {
				fmt.Printf("… and %d more diffs (raise -max-diffs or use -json)\n", len(rep.Diffs)-i)
				break
			}
			if d.Err != "" {
				fmt.Printf("ERROR  %-40q %s\n", d.Query, d.Err)
				continue
			}
			fmt.Printf("DIFF   %-40q rows %d→%d (%d changed), sim shift %.6f\n",
				d.Query, d.Recorded, d.Replayed, d.RowsChanged, d.SimShiftMax)
		}
	}
	if rep.Changed > 0 || rep.Errors > 0 {
		return exitCode(2)
	}
	return nil
}

func readLogs(paths []string) (*audit.Log, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("no log files given")
	}
	return audit.ReadLogFiles(paths)
}

func printHeader(lg *audit.Log) {
	if lg.Header != nil {
		h := lg.Header
		fmt.Printf("log header        service=%s model=%s", orDash(h.Service), orDash(h.ModelFingerprint))
		if h.SampleRate > 1 {
			fmt.Printf(" sample=1/%d", h.SampleRate)
		}
		fmt.Println()
	}
	if lg.Truncated > 0 {
		fmt.Printf("truncated lines   %d (crash-cut tail tolerated)\n", lg.Truncated)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
