// Command aimq-experiments reproduces the paper's evaluation: every table
// and figure of §6 over the synthetic CarDB and CensusDB datasets.
//
// Usage:
//
//	aimq-experiments                 # quick scale (seconds)
//	aimq-experiments -full           # paper scale (100k CarDB, 45k CensusDB)
//	aimq-experiments -run fig8,fig9  # selected experiments only
//	aimq-experiments -list           # list experiment ids
//
// Experiment ids match DESIGN.md's index: table2, fig3, fig4, table3, fig5,
// fig6, fig7, fig8, fig9.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"aimq/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run at the paper's scale (slower)")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	seed := flag.Int64("seed", 0, "override the experiment seed")
	censusQueries := flag.Int("census-queries", 0, "override Fig 9 query count")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	params := experiments.Quick()
	if *full {
		params = experiments.Full()
	}
	if *seed != 0 {
		params.Seed = *seed
	}
	if *censusQueries > 0 {
		params.CensusQueries = *censusQueries
	}

	ids := experiments.IDs()
	if *run != "" {
		ids = strings.Split(*run, ",")
	}

	lab := experiments.NewLab(params)
	scale := "quick"
	if *full {
		scale = "full (paper)"
	}
	fmt.Printf("AIMQ experiment suite — %s scale, seed %d\n", scale, params.Seed)
	fmt.Printf("CarDB %d tuples, CensusDB %d tuples\n\n", params.CarDBSize, params.CensusSize)

	failed := false
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(strings.TrimSpace(id), lab)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Printf("=== %s (%v) ===\n%s\n", id, time.Since(start).Round(time.Millisecond), res.Render())
	}
	if failed {
		os.Exit(1)
	}
}
