// Command aimqd serves a CSV-backed relation as an autonomous Web database:
// a form-style boolean query interface over HTTP, exactly the access model
// the paper assumes for remote sources.
//
// Usage:
//
//	aimqd -data cardb.csv -addr :8080
//
// Endpoints:
//
//	GET /schema                         — attribute names and types
//	GET /query?Make=Ford&Price.lt=9000  — boolean conjunctive query
//
// Query the served database with the aimq CLI:
//
//	aimq -url http://127.0.0.1:8080 -q "Make like Ford"
//
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aimq/internal/relation"
	"aimq/internal/webdb"
)

func main() {
	data := flag.String("data", "", "CSV file to serve")
	addr := flag.String("addr", ":8080", "listen address")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second, "keep-alive idle connection timeout")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
	flag.Parse()

	if err := run(*data, *addr, *idleTimeout, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "aimqd:", err)
		os.Exit(1)
	}
}

func run(data, addr string, idleTimeout, drain time.Duration) error {
	if data == "" {
		return fmt.Errorf("need -data")
	}
	rel, err := relation.LoadCSV(data)
	if err != nil {
		return err
	}
	src := &webdb.ProbeCounter{Src: webdb.NewLocal(rel)}
	srv := &http.Server{
		Addr:              addr,
		Handler:           logRequests(webdb.NewServer(src)),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("serving %d tuples of %s on %s", rel.Size(), rel.Schema(), addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining in-flight requests (up to %s)", drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("stopped after %d source queries", src.Queries())
	return nil
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%s)", r.Method, r.URL, time.Since(start).Round(time.Microsecond))
	})
}
