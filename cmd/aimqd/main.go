// Command aimqd serves a CSV-backed relation as an autonomous Web database:
// a form-style boolean query interface over HTTP, exactly the access model
// the paper assumes for remote sources.
//
// Usage:
//
//	aimqd -data cardb.csv -addr :8080
//
// Endpoints:
//
//	GET /schema                         — attribute names and types
//	GET /query?Make=Ford&Price.lt=9000  — boolean conjunctive query
//
// Query the served database with the aimq CLI:
//
//	aimq -url http://127.0.0.1:8080 -q "Make like Ford"
//
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aimq/internal/obs"
	"aimq/internal/relation"
	"aimq/internal/version"
	"aimq/internal/webdb"
)

func main() {
	data := flag.String("data", "", "CSV file to serve")
	addr := flag.String("addr", ":8080", "listen address")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second, "keep-alive idle connection timeout")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Printf("aimqd %s (%s)\n", version.Version, version.GoVersion())
		return
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	slog.SetDefault(slog.New(handler))

	if err := run(*data, *addr, *idleTimeout, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "aimqd:", err)
		os.Exit(1)
	}
}

func run(data, addr string, idleTimeout, drain time.Duration) error {
	if data == "" {
		return fmt.Errorf("need -data")
	}
	rel, err := relation.LoadCSV(data)
	if err != nil {
		return err
	}
	src := &webdb.ProbeCounter{Src: webdb.NewLocal(rel)}
	srv := &http.Server{
		Addr:              addr,
		Handler:           logRequests(webdb.NewServer(src)),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		slog.Info("serving relation", "version", version.Version,
			"tuples", rel.Size(), "schema", rel.Schema().String(), "addr", addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	slog.Info("shutting down: draining in-flight requests", "budget", drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	slog.Info("stopped", "source_queries", src.Queries())
	return nil
}

// logRequests emits one structured line per request, tagged with a request
// ID that is echoed back as X-Request-ID (the caller's own ID is kept when
// it forwards one, so a mediator's trace and the source's log correlate).
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		start := time.Now()
		next.ServeHTTP(w, r)
		slog.Info("request", "request_id", id, "method", r.Method,
			"url", r.URL.String(), "elapsed", time.Since(start).Round(time.Microsecond))
	})
}
