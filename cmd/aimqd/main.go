// Command aimqd serves a CSV-backed relation as an autonomous Web database:
// a form-style boolean query interface over HTTP, exactly the access model
// the paper assumes for remote sources.
//
// Usage:
//
//	aimqd -data cardb.csv -addr :8080
//
// Endpoints:
//
//	GET /schema                         — attribute names and types
//	GET /query?Make=Ford&Price.lt=9000  — boolean conjunctive query
//
// Query the served database with the aimq CLI:
//
//	aimq -url http://127.0.0.1:8080 -q "Make like Ford"
//
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aimq/internal/obs"
	"aimq/internal/relation"
	"aimq/internal/version"
	"aimq/internal/webdb"
)

func main() {
	data := flag.String("data", "", "CSV file to serve")
	addr := flag.String("addr", ":8080", "listen address")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second, "keep-alive idle connection timeout")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
	traceRing := flag.Int("trace-ring", 64, "query traces kept by /debug/traces (recent and slowest each; <=0 disables tracing)")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Printf("aimqd %s (%s)\n", version.Version, version.GoVersion())
		return
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	slog.SetDefault(slog.New(handler))

	if err := run(*data, *addr, *idleTimeout, *drain, *traceRing); err != nil {
		fmt.Fprintln(os.Stderr, "aimqd:", err)
		os.Exit(1)
	}
}

func run(data, addr string, idleTimeout, drain time.Duration, traceRing int) error {
	if data == "" {
		return fmt.Errorf("need -data")
	}
	rel, err := relation.LoadCSV(data)
	if err != nil {
		return err
	}
	src := &webdb.ProbeCounter{Src: webdb.NewLocal(rel)}
	server := webdb.NewServer(src)
	var root http.Handler = server
	if traceRing > 0 {
		// Tracing on: every /query runs under a recorder that joins the
		// caller's traceparent (a mediator's relaxation trace continues here),
		// and the finished traces — engine EXPLAIN included — are retained
		// for /debug/traces and the Perfetto export.
		ring := obs.NewRing(traceRing)
		server.EnableTracing(ring)
		mux := http.NewServeMux()
		mux.Handle("/", server)
		mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, _ *http.Request) {
			recent, slowest := ring.Snapshot()
			writeJSON(w, map[string]any{
				"retained": len(recent),
				"recent":   recent,
				"slowest":  slowest,
			})
		})
		mux.HandleFunc("GET /debug/traces/export", func(w http.ResponseWriter, _ *http.Request) {
			recent, slowest := ring.Snapshot()
			seen := map[string]bool{}
			var traces []obs.Trace
			for _, t := range append(recent, slowest...) {
				if seen[t.ID] {
					continue
				}
				seen[t.ID] = true
				traces = append(traces, t)
			}
			w.Header().Set("Content-Type", "application/json")
			_ = obs.WriteChromeTrace(w, traces)
		})
		root = mux
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           logRequests(root),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		slog.Info("serving relation", "version", version.Version,
			"tuples", rel.Size(), "schema", rel.Schema().String(), "addr", addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	slog.Info("shutting down: draining in-flight requests", "budget", drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	slog.Info("stopped", "source_queries", src.Queries())
	return nil
}

// logRequests emits one structured line per request, tagged with a request
// ID that is echoed back as X-Request-ID (the caller's own ID is kept when
// it forwards one, so a mediator's trace and the source's log correlate).
// When tracing is on, the line also carries the trace ID the query joined —
// the same ID the mediator's own trace shows for its source_http span.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(obs.RequestIDHeader)
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set(obs.RequestIDHeader, id)
		start := time.Now()
		next.ServeHTTP(w, r)
		attrs := []any{"request_id", id, "method", r.Method,
			"url", r.URL.String(), "elapsed", time.Since(start).Round(time.Microsecond)}
		if tid := w.Header().Get("X-Trace-ID"); tid != "" {
			attrs = append(attrs, "trace_id", tid)
		}
		slog.Info("request", attrs...)
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
