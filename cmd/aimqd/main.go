// Command aimqd serves a CSV-backed relation as an autonomous Web database:
// a form-style boolean query interface over HTTP, exactly the access model
// the paper assumes for remote sources.
//
// Usage:
//
//	aimqd -data cardb.csv -addr :8080
//
// Endpoints:
//
//	GET /schema                         — attribute names and types
//	GET /query?Make=Ford&Price.lt=9000  — boolean conjunctive query
//
// Query the served database with the aimq CLI:
//
//	aimq -url http://127.0.0.1:8080 -q "Make like Ford"
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"aimq/internal/relation"
	"aimq/internal/webdb"
)

func main() {
	data := flag.String("data", "", "CSV file to serve")
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	if err := run(*data, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "aimqd:", err)
		os.Exit(1)
	}
}

func run(data, addr string) error {
	if data == "" {
		return fmt.Errorf("need -data")
	}
	rel, err := relation.LoadCSV(data)
	if err != nil {
		return err
	}
	src := &webdb.ProbeCounter{Src: webdb.NewLocal(rel)}
	srv := &http.Server{
		Addr:         addr,
		Handler:      logRequests(webdb.NewServer(src)),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	log.Printf("serving %d tuples of %s on %s", rel.Size(), rel.Schema(), addr)
	return srv.ListenAndServe()
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%s)", r.Method, r.URL, time.Since(start).Round(time.Microsecond))
	})
}
