// Command aimq-mine runs the offline dependency-mining pipeline over a CSV
// relation and prints what AIMQ learned: approximate functional
// dependencies, approximate keys, the attribute relaxation order with
// importance weights, and (optionally) mined value neighborhoods.
//
// Usage:
//
//	aimq-mine -data cardb.csv -terr 0.15 -maxlhs 3
//	aimq-mine -data cardb.csv -similar Make=Ford,Model=Camry
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"aimq/internal/afd"
	"aimq/internal/relation"
	"aimq/internal/similarity"
	"aimq/internal/supertuple"
	"aimq/internal/tane"
)

func main() {
	data := flag.String("data", "", "CSV file to mine")
	terr := flag.Float64("terr", 0.15, "g3 error threshold")
	maxLHS := flag.Int("maxlhs", 3, "max antecedent size")
	minimal := flag.Bool("minimal", false, "report only minimal dependencies")
	topAFDs := flag.Int("afds", 25, "number of AFDs to print")
	similar := flag.String("similar", "", "comma-separated Attr=Value pairs to show mined neighborhoods for")
	workers := flag.Int("workers", 1, "mining + supertuple build goroutines (results are identical at any count)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aimq-mine:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "aimq-mine:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	err := run(*data, *terr, *maxLHS, *minimal, *topAFDs, *similar, *workers)

	if *memProfile != "" {
		f, mErr := os.Create(*memProfile)
		if mErr == nil {
			runtime.GC()
			mErr = pprof.WriteHeapProfile(f)
			f.Close()
		}
		if mErr != nil {
			fmt.Fprintln(os.Stderr, "aimq-mine: memprofile:", mErr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aimq-mine:", err)
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(1)
	}
}

func run(data string, terr float64, maxLHS int, minimal bool, topAFDs int, similar string, workers int) error {
	if data == "" {
		return fmt.Errorf("need -data")
	}
	rel, err := relation.LoadCSV(data)
	if err != nil {
		return err
	}
	fmt.Printf("mining %d tuples of %s (Terr=%.2f, MaxLHS=%d, workers=%d)\n\n", rel.Size(), rel.Schema(), terr, maxLHS, workers)

	res := tane.Miner{Terr: terr, MaxLHS: maxLHS, MinimalOnly: minimal, Workers: workers}.Mine(rel)
	fmt.Printf("lattice: %d levels, %d sets examined, %d partition products (%d pruned/reused), peak partition memory %d bytes\n\n",
		res.LevelsVisited, res.SetsExamined, res.ProductsComputed, res.PartitionCacheHits, res.PeakPartitionBytes)
	fmt.Printf("approximate functional dependencies: %d (top %d by support)\n", len(res.AFDs), topAFDs)
	for i, a := range res.AFDs {
		if i >= topAFDs {
			break
		}
		fmt.Println("  " + a.Render(rel.Schema()))
	}
	fmt.Printf("\napproximate keys: %d\n", len(res.AKeys))
	for _, k := range res.AKeys {
		fmt.Println("  " + k.Render(rel.Schema()))
	}

	ord, err := afd.Order(res)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(ord.Describe())

	if similar != "" {
		idx := supertuple.Builder{Buckets: 10, Workers: workers}.Build(rel)
		est := similarity.New(idx, ord, similarity.Config{})
		fmt.Println("\nmined value neighborhoods:")
		for _, pair := range strings.Split(similar, ",") {
			parts := strings.SplitN(strings.TrimSpace(pair), "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad -similar entry %q (want Attr=Value)", pair)
			}
			attr, ok := rel.Schema().Index(parts[0])
			if !ok {
				return fmt.Errorf("unknown attribute %q", parts[0])
			}
			fmt.Println("  " + est.DescribeNeighborhood(attr, parts[1], 5))
		}
	}
	return nil
}
