package main

import (
	"testing"

	"aimq/internal/datagen"
	"aimq/internal/relation"
)

func carCSV(t *testing.T) string {
	t.Helper()
	path := t.TempDir() + "/cars.csv"
	if err := relation.SaveCSV(path, datagen.GenerateCarDB(1500, 9).Rel); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunMine(t *testing.T) {
	path := carCSV(t)
	if err := run(path, 0.15, 2, false, 5, "", 1); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Minimal mode and neighborhoods.
	if err := run(path, 0.15, 2, true, 3, "Make=Ford,Model=Camry", 1); err != nil {
		t.Fatalf("run with -similar: %v", err)
	}
}

func TestRunMineErrors(t *testing.T) {
	if err := run("", 0.15, 2, false, 5, "", 1); err == nil {
		t.Errorf("missing -data accepted")
	}
	if err := run("/does/not/exist.csv", 0.15, 2, false, 5, "", 1); err == nil {
		t.Errorf("missing file accepted")
	}
	path := carCSV(t)
	if err := run(path, 0.15, 2, false, 5, "BadPair", 1); err == nil {
		t.Errorf("malformed -similar accepted")
	}
	if err := run(path, 0.15, 2, false, 5, "Ghost=x", 1); err == nil {
		t.Errorf("unknown attribute in -similar accepted")
	}
}
