// Command aimq-bench runs the standardized AIMQ benchmark scenarios and
// emits one BENCH_<scenario>.json per scenario — the repo's machine-readable
// performance trajectory — then optionally diffs the run against a baseline
// directory and exits non-zero past the regression threshold.
//
// Refresh the results (full scale):
//
//	aimq-bench -out bench-results
//
// The CI gate (quick scale, diffed against the checked-in baseline, failing
// only past a generous 2x):
//
//	aimq-bench -quick -out bench-results -baseline bench/baseline -threshold 2 \
//	  -alloc-gate serve-warm=16
//
// Diff two existing result sets without running anything:
//
//	aimq-bench -compare-only -out bench-results -baseline bench/baseline
//
// Scenarios cover the three cost centers of the paper's architecture: the
// offline learn phase (probe→TANE→ordering→supertuples) at several sample
// sizes, query answering under GuidedRelax / RandomRelax / ROCK with the
// §6.3 Work/RelevantTuple quality number, and the concurrent serving layer
// (cold cache, warm cache, single-flight contention).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"aimq/internal/bench"
	"aimq/internal/version"
)

func main() {
	out := flag.String("out", "bench-results", "directory BENCH_*.json results are written to")
	quick := flag.Bool("quick", false, "shrink every scenario for a seconds-long CI run")
	run := flag.String("run", "", "only run scenarios whose name contains this substring")
	seed := flag.Int64("seed", 2006, "dataset and workload seed")
	baseline := flag.String("baseline", "", "baseline directory to diff against after the run")
	threshold := flag.Float64("threshold", 1.5, "worse-ratio past which a metric delta is a regression")
	compareOnly := flag.Bool("compare-only", false, "skip running; just diff -out against -baseline")
	learnWorkers := flag.Int("learn-workers", 0, "probe/supertuple workers for the learn scenarios (0 = default 4; 1 measures the serial path)")
	allocGate := flag.String("alloc-gate", "", "comma-separated scenario=max allocs/op caps, e.g. serve-warm=16; exceeding any fails the run")
	list := flag.Bool("list", false, "list scenarios and exit")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Printf("aimq-bench %s (%s)\n", version.Version, version.GoVersion())
		return
	}
	if *list {
		for _, s := range bench.Scenarios() {
			fmt.Printf("%-18s %s\n", s.Name, s.Describe)
		}
		return
	}
	gates, err := parseAllocGates(*allocGate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aimq-bench:", err)
		os.Exit(1)
	}
	code, err := runMain(*out, *baseline, *run, *threshold, *seed, *quick, *compareOnly, *learnWorkers, gates, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aimq-bench:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// runMain executes the selected scenarios and/or the baseline comparison.
// The returned code is the process exit code: 0 clean, 2 when the
// regression gate fails.
func runMain(out, baseline, runFilter string, threshold float64, seed int64, quick, compareOnly bool, learnWorkers int, gates map[string]float64, w io.Writer) (int, error) {
	if !compareOnly {
		if err := runScenarios(out, runFilter, seed, quick, learnWorkers, w); err != nil {
			return 0, err
		}
	}
	code := 0
	if len(gates) > 0 {
		gc, err := checkAllocGates(out, gates, w)
		if err != nil {
			return 0, err
		}
		if gc != 0 {
			code = gc
		}
	}
	if baseline == "" {
		return code, nil
	}
	cc, err := compareDirs(baseline, out, threshold, w)
	if err != nil {
		return 0, err
	}
	if cc != 0 {
		code = cc
	}
	return code, nil
}

// parseAllocGates parses "-alloc-gate serve-warm=16,serve-cold=100000"
// into a scenario→cap map.
func parseAllocGates(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	gates := make(map[string]float64)
	for _, part := range strings.Split(spec, ",") {
		name, limit, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("-alloc-gate %q: want scenario=max", part)
		}
		max, err := strconv.ParseFloat(limit, 64)
		if err != nil {
			return nil, fmt.Errorf("-alloc-gate %q: %w", part, err)
		}
		gates[name] = max
	}
	return gates, nil
}

// checkAllocGates enforces the per-scenario allocs/op caps against the
// results in dir. A gated scenario missing from the results is an error —
// a silently skipped gate would pass forever.
func checkAllocGates(dir string, gates map[string]float64, w io.Writer) (int, error) {
	results, err := bench.LoadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("alloc gate: %w", err)
	}
	byName := make(map[string]bench.Result, len(results))
	for _, r := range results {
		byName[r.Scenario] = r
	}
	code := 0
	for name, max := range gates {
		r, ok := byName[name]
		if !ok {
			return 0, fmt.Errorf("alloc gate: scenario %s has no result in %s", name, dir)
		}
		if r.Mem.AllocsPerOp > max {
			fmt.Fprintf(w, "alloc gate FAIL: %s at %.0f allocs/op exceeds the %.0f cap\n",
				name, r.Mem.AllocsPerOp, max)
			code = 2
		} else {
			fmt.Fprintf(w, "alloc gate ok: %s at %.0f allocs/op (cap %.0f)\n",
				name, r.Mem.AllocsPerOp, max)
		}
	}
	return code, nil
}

func runScenarios(out, runFilter string, seed int64, quick bool, learnWorkers int, w io.Writer) error {
	scenarios := bench.Select(bench.Scenarios(), runFilter)
	if len(scenarios) == 0 {
		return fmt.Errorf("no scenario matches -run %q", runFilter)
	}
	opts := bench.Options{Quick: quick, Seed: seed, LearnWorkers: learnWorkers}
	env := bench.NewEnv(opts)
	mode := "full"
	if quick {
		mode = "quick"
	}
	fmt.Fprintf(w, "aimq-bench %s: %d scenario(s), %s scale, seed %d → %s\n",
		version.Version, len(scenarios), mode, seed, out)
	for _, s := range scenarios {
		start := time.Now()
		res, err := s.Run(opts, env)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		path, err := bench.WriteResult(out, res)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		fmt.Fprintf(w, "%-18s %4d ops in %8s  p50 %10s  p99 %10s  %9.1f ops/s  %7.0f allocs/op",
			s.Name, res.Iterations, time.Since(start).Round(time.Millisecond),
			durStr(res.Latency.P50), durStr(res.Latency.P99), res.Throughput, res.Mem.AllocsPerOp)
		if q := res.Quality; q != nil {
			fmt.Fprintf(w, "  work/relevant %.1f", q.WorkPerRelevant)
		}
		fmt.Fprintf(w, "  → %s\n", path)
	}
	return nil
}

func compareDirs(baselineDir, currentDir string, threshold float64, w io.Writer) (int, error) {
	base, err := bench.LoadDir(baselineDir)
	if err != nil {
		return 0, fmt.Errorf("baseline %s: %w", baselineDir, err)
	}
	if len(base) == 0 {
		return 0, fmt.Errorf("baseline %s holds no BENCH_*.json", baselineDir)
	}
	cur, err := bench.LoadDir(currentDir)
	if err != nil {
		return 0, fmt.Errorf("results %s: %w", currentDir, err)
	}
	cmp, err := bench.Compare(base, cur, threshold)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(w, "\nregression gate: %s (baseline) vs %s (current), threshold %.2fx\n",
		baselineDir, currentDir, threshold)
	cmp.RenderTable(w, threshold)
	if cmp.Failed() {
		return 2, nil
	}
	return 0, nil
}

func durStr(seconds float64) string {
	return time.Duration(seconds * float64(time.Second)).Round(time.Microsecond).String()
}
