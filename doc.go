// Package aimq answers imprecise queries over autonomous Web databases.
//
// It is a from-scratch implementation of AIMQ (Nambiar & Kambhampati,
// "Answering Imprecise Queries over Autonomous Web Databases", ICDE 2006):
// a domain- and user-independent system that takes a conjunctive query with
// "like" constraints — e.g. Model like Camry, Price like 10000 — against a
// database that only supports exact boolean matching, and returns a ranked
// set of similar tuples, without any user-supplied distance metrics or
// attribute weights.
//
// Everything the system knows, it learns from a sample of the data itself:
//
//   - attribute importance comes from approximate functional dependencies
//     and approximate keys mined with the TANE algorithm (g3 error measure),
//     turned into a relaxation order and importance weights by the paper's
//     Algorithm 2;
//   - categorical value similarity comes from co-occurrence statistics:
//     every attribute-value pair is summarized as a "supertuple" of keyword
//     bags, compared with bag-semantics Jaccard;
//   - answers are found by tightening the imprecise query to a precise base
//     query, treating each base answer as a fully-bound query, and relaxing
//     it along the mined attribute order against the source.
//
// # Quick start
//
//	db := aimq.Open(rel)                    // or aimq.Connect("http://...")
//	if err := db.Learn(); err != nil { ... }
//	ans, err := db.Ask("Model like Camry, Price like 10000")
//	for _, row := range ans.Rows {
//	    fmt.Println(row.Similarity, row.Values)
//	}
//
// The cmd/ directory ships a query CLI (aimq), a dataset generator
// (aimq-datagen), a dependency-mining inspector (aimq-mine), an autonomous
// web-database server (aimqd), and the full experiment harness reproducing
// every table and figure in the paper (aimq-experiments).
package aimq
