package aimq

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"

	"aimq/internal/afd"
	"aimq/internal/core"
	"aimq/internal/probe"
	"aimq/internal/relation"
	"aimq/internal/similarity"
	"aimq/internal/supertuple"
	"aimq/internal/tane"
	"aimq/internal/webdb"
	"aimq/internal/workload"
)

// DB is an AIMQ session over one autonomous database. Create one with Open
// (in-process data), OpenCSV (a file) or Connect (a remote web database),
// call Learn once to mine the source, then Ask imprecise queries.
//
// A DB is safe for concurrent Ask calls after Learn has returned.
type DB struct {
	src    webdb.Source
	cfg    config
	probed *relation.Relation

	ord *afd.Ordering
	est *similarity.Estimator
	idx *supertuple.Index

	// log records every asked query for workload-driven adaptation.
	log *workload.Log
}

// ErrNotLearned is returned by query methods before Learn has run.
var ErrNotLearned = errors.New("aimq: call Learn before querying")

// Open creates a session over an in-process relation. The relation is
// treated exactly like a remote source: AIMQ only issues boolean queries
// against it.
func Open(rel *relation.Relation, opts ...Option) *DB {
	return newDB(webdb.NewLocal(rel), opts...)
}

// OpenCSV creates a session over a relation stored in a CSV file written by
// SaveCSV / cmd/aimq-datagen.
func OpenCSV(path string, opts ...Option) (*DB, error) {
	rel, err := relation.LoadCSV(path)
	if err != nil {
		return nil, err
	}
	return Open(rel, opts...), nil
}

// Connect creates a session over a remote autonomous web database serving
// the aimqd HTTP interface.
func Connect(baseURL string, client *http.Client, opts ...Option) (*DB, error) {
	c, err := webdb.NewClient(baseURL, client)
	if err != nil {
		return nil, err
	}
	return newDB(c, opts...), nil
}

// OpenSource creates a session over any webdb.Source implementation —
// custom transports, middlewares like webdb.ProbeCounter, or the
// fault-injecting webdb.Flaky used in resilience tests.
func OpenSource(src webdb.Source, opts ...Option) *DB {
	return newDB(src, opts...)
}

func newDB(src webdb.Source, opts ...Option) *DB {
	db := &DB{src: src, cfg: defaultConfig(), log: workload.NewLog(src.Schema())}
	for _, o := range opts {
		o(&db.cfg)
	}
	return db
}

// Schema returns the source's schema.
func (db *DB) Schema() *relation.Schema { return db.src.Schema() }

// Source returns the underlying source (useful for probe accounting).
func (db *DB) Source() webdb.Source { return db.src }

// Learn runs AIMQ's offline phase: it probes the source for a sample (or
// uses the one supplied via WithSample), mines approximate functional
// dependencies and keys with TANE, derives the attribute relaxation order
// and importance weights (Algorithm 2), and estimates categorical value
// similarities from supertuples.
func (db *DB) Learn() error {
	sample := db.cfg.sample
	if sample == nil {
		rng := rand.New(rand.NewSource(db.cfg.seed))
		collector := probe.New(db.src, rng)
		collector.Parallelism = db.cfg.probeWorkers
		pivot := db.cfg.pivot
		if pivot == "" {
			p, err := db.pickPivot()
			if err != nil {
				return err
			}
			pivot = p
		}
		probed, err := collector.Collect(pivot)
		if err != nil {
			return fmt.Errorf("aimq: probing failed: %w", err)
		}
		if db.cfg.sampleSize > 0 && probed.Size() > db.cfg.sampleSize {
			probed = probed.Sample(db.cfg.sampleSize, rng)
		}
		sample = probed
	}
	db.probed = sample

	mined := tane.Miner{Terr: db.cfg.terr, MaxLHS: db.cfg.maxLHS}.Mine(sample)
	ord, err := afd.Order(mined)
	if err != nil {
		return fmt.Errorf("aimq: %w (raise Terr with WithErrorThreshold or supply a larger sample)", err)
	}
	db.ord = ord
	db.idx = supertuple.Builder{Buckets: db.cfg.buckets}.Build(sample)
	db.est = similarity.New(db.idx, ord, similarity.Config{MinSim: db.cfg.minSim})
	return nil
}

// pickPivot selects a probing pivot: the lowest-cardinality attribute that
// still shows at least two values in a seed probe.
func (db *DB) pickPivot() (string, error) {
	infos, err := probe.PivotCoverage(db.src, 2000)
	if err != nil {
		return "", fmt.Errorf("aimq: pivot discovery failed: %w", err)
	}
	for _, info := range infos {
		if info.DistinctInSeed >= 2 {
			return info.Attr, nil
		}
	}
	return "", errors.New("aimq: no usable probing pivot (source empty?)")
}

// Learned reports whether Learn has completed.
func (db *DB) Learned() bool { return db.est != nil }

// Sample returns the probed sample the model was learned from (nil before
// Learn).
func (db *DB) Sample() *relation.Relation { return db.probed }

// engine assembles the online query engine with the session's config.
func (db *DB) engine() *core.Engine {
	return core.New(db.src, db.est, &core.Guided{Ord: db.ord}, core.Config{
		Tsim:              db.cfg.tsim,
		K:                 db.cfg.k,
		BaseLimit:         db.cfg.baseLimit,
		PerQueryLimit:     db.cfg.perQueryLimit,
		TargetRelevant:    db.cfg.targetRelevant,
		MaxQueriesPerBase: db.cfg.maxQueriesPerBase,
		MaxSourceFailures: db.cfg.maxSourceFailures,
		Trace:             db.cfg.trace,
	})
}

// WorkloadQueries returns how many queries this session has recorded for
// workload-driven adaptation.
func (db *DB) WorkloadQueries() int { return db.log.Queries() }

// AdaptToWorkload blends the mined (data-driven) attribute importance with
// the query-driven importance observed in this session's workload — the
// complementary approach the paper discusses in §7. alpha 0 keeps the mined
// model; alpha 1 trusts only the workload. Requires at least one Ask since
// the session started. Not safe to call concurrently with Ask.
func (db *DB) AdaptToWorkload(alpha float64) error {
	if !db.Learned() {
		return ErrNotLearned
	}
	blended, err := db.log.Blend(db.ord, alpha)
	if err != nil {
		return fmt.Errorf("aimq: %w", err)
	}
	db.ord = blended
	db.est.Ordering = blended
	return nil
}
