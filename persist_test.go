package aimq

import (
	"errors"
	"math"
	"strings"
	"testing"

	"aimq/internal/datagen"
)

func TestSaveLoadModelRoundTrip(t *testing.T) {
	db, gen := learnedCarDB(t, 3000)
	path := t.TempDir() + "/model.json"
	if err := db.SaveModel(path); err != nil {
		t.Fatalf("SaveModel: %v", err)
	}

	// A fresh session over the same source loads the model and answers
	// identically, without Learn.
	fresh := Open(gen.Rel, WithSeed(11))
	if err := fresh.LoadModel(path); err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	if !fresh.Learned() {
		t.Fatalf("Learned false after LoadModel")
	}

	const q = "Model like Camry, Price like 9000"
	a, err := db.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("answer count differs: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if math.Abs(a.Rows[i].Similarity-b.Rows[i].Similarity) > 1e-12 {
			t.Errorf("row %d similarity differs: %v vs %v", i, a.Rows[i].Similarity, b.Rows[i].Similarity)
		}
		for j := range a.Rows[i].Values {
			if a.Rows[i].Values[j] != b.Rows[i].Values[j] {
				t.Errorf("row %d value %d differs", i, j)
			}
		}
	}

	// Introspection that survives persistence.
	ka, _, _ := db.BestKey()
	kb, _, err := fresh.BestKey()
	if err != nil || strings.Join(ka, ",") != strings.Join(kb, ",") {
		t.Errorf("best key differs after load: %v vs %v (%v)", ka, kb, err)
	}
	sa, _ := db.SimilarValues("Make", "Ford", 3)
	sb, err := fresh.SimilarValues("Make", "Ford", 3)
	if err != nil || len(sa) != len(sb) {
		t.Fatalf("SimilarValues after load: %v, %v", sb, err)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Errorf("similar value %d differs", i)
		}
	}

	// Supertuples are not persisted — clear error, not a panic.
	if _, err := fresh.SuperTuple("Make", "Ford", 3); err == nil || !strings.Contains(err.Error(), "LoadModel") {
		t.Errorf("SuperTuple after LoadModel = %v", err)
	}
	// Feedback still works on the restored model.
	row := []string{"Honda", "Accord", "2000", "9100", "70000", "Phoenix", "White"}
	if err := fresh.Feedback("Model like Camry", row, true); err != nil {
		t.Errorf("Feedback after LoadModel: %v", err)
	}
}

func TestSaveModelBeforeLearn(t *testing.T) {
	db := Open(datagen.GenerateCarDB(100, 5).Rel)
	if err := db.SaveModel(t.TempDir() + "/m.json"); !errors.Is(err, ErrNotLearned) {
		t.Errorf("SaveModel before Learn = %v", err)
	}
}

func TestLoadModelSchemaMismatch(t *testing.T) {
	db, _ := learnedCarDB(t, 800)
	path := t.TempDir() + "/model.json"
	if err := db.SaveModel(path); err != nil {
		t.Fatal(err)
	}
	census := Open(datagen.GenerateCensusDB(100, 6).Rel)
	if err := census.LoadModel(path); err == nil {
		t.Errorf("cross-schema model load accepted")
	}
	if err := db.LoadModel(path + ".missing"); err == nil {
		t.Errorf("missing model file accepted")
	}
}
