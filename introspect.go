package aimq

import (
	"fmt"

	"aimq/internal/relation"
)

// AttributeImportance describes one attribute's learned role.
type AttributeImportance struct {
	Name string
	// RelaxOrder is the 1-based position at which the attribute is relaxed
	// (1 = least important, relaxed first).
	RelaxOrder int
	// Weight is the importance weight W_imp normalized over all attributes.
	Weight float64
	// Deciding reports whether the attribute belongs to the mined best
	// approximate key (the deciding set).
	Deciding bool
}

// AttributeOrder returns the learned attribute importance, least important
// first — the order in which query constraints are relaxed.
func (db *DB) AttributeOrder() ([]AttributeImportance, error) {
	if !db.Learned() {
		return nil, ErrNotLearned
	}
	sc := db.Schema()
	all := relation.AttrSet(0)
	for i := 0; i < sc.Arity(); i++ {
		all = all.Add(i)
	}
	weights := db.ord.ImportanceWeights(all)
	out := make([]AttributeImportance, 0, sc.Arity())
	for pos, a := range db.ord.Relax {
		out = append(out, AttributeImportance{
			Name:       sc.Attr(a).Name,
			RelaxOrder: pos + 1,
			Weight:     weights[a],
			Deciding:   db.ord.BestKey.Attrs.Has(a),
		})
	}
	return out, nil
}

// BestKey returns the mined best approximate key (attribute names and
// support).
func (db *DB) BestKey() ([]string, float64, error) {
	if !db.Learned() {
		return nil, 0, ErrNotLearned
	}
	var names []string
	for _, a := range db.ord.BestKey.Attrs.Members() {
		names = append(names, db.Schema().Attr(a).Name)
	}
	return names, db.ord.BestKey.Support(), nil
}

// ValueSimilarity is one mined similar value.
type ValueSimilarity struct {
	Value      string
	Similarity float64
}

// SimilarValues returns the n values most similar to value under the named
// categorical attribute, mined from data associations (paper §5).
func (db *DB) SimilarValues(attr, value string, n int) ([]ValueSimilarity, error) {
	if !db.Learned() {
		return nil, ErrNotLearned
	}
	idx, ok := db.Schema().Index(attr)
	if !ok {
		return nil, fmt.Errorf("aimq: unknown attribute %q", attr)
	}
	if db.Schema().Type(idx) != relation.Categorical {
		return nil, fmt.Errorf("aimq: attribute %q is numeric; similar-value mining applies to categorical attributes", attr)
	}
	var out []ValueSimilarity
	for _, vs := range db.est.TopSimilar(idx, value, n) {
		out = append(out, ValueSimilarity{Value: vs.Value, Similarity: vs.Sim})
	}
	return out, nil
}

// SuperTuple renders the supertuple of an attribute-value pair — the
// co-occurrence summary value similarity is estimated from (paper Table 1).
// topN caps the keywords listed per attribute.
func (db *DB) SuperTuple(attr, value string, topN int) (string, error) {
	if !db.Learned() {
		return "", ErrNotLearned
	}
	if db.idx == nil {
		return "", fmt.Errorf("aimq: supertuples unavailable on a model loaded with LoadModel; run Learn to rebuild them")
	}
	idx, ok := db.Schema().Index(attr)
	if !ok {
		return "", fmt.Errorf("aimq: unknown attribute %q", attr)
	}
	st := db.idx.Get(idx, value)
	if st == nil {
		return "", fmt.Errorf("aimq: no supertuple for %s=%s (value unseen in sample)", attr, value)
	}
	return st.Render(db.Schema(), topN), nil
}

// DescribeModel renders the full learned model (best key, relaxation order,
// importance weights) for diagnostics.
func (db *DB) DescribeModel() (string, error) {
	if !db.Learned() {
		return "", ErrNotLearned
	}
	return db.ord.Describe(), nil
}
