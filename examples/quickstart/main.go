// Quickstart: the smallest end-to-end AIMQ program.
//
// It generates a small used-car database, learns attribute importance and
// value similarities from it, and answers one imprecise query — no
// user-supplied distance metrics, no attribute weights, no configuration.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aimq"
	"aimq/internal/datagen"
)

func main() {
	// Any relation works; here we use the synthetic CarDB generator. To
	// use your own data: aimq.OpenCSV("cars.csv") or aimq.Connect(url).
	cars := datagen.GenerateCarDB(20000, 42)
	db := aimq.Open(cars.Rel)

	// Offline phase (once per source): mine dependencies, learn the
	// attribute relaxation order, estimate value similarities.
	if err := db.Learn(); err != nil {
		log.Fatal(err)
	}

	// Online phase: ask an imprecise query. "like" constraints request
	// similarity, not equality.
	ans, err := db.Ask("Model like Camry, Price like 10000")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("answers for: Model like Camry, Price like 10000")
	fmt.Print(ans)
}
