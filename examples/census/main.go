// Census: domain independence (paper §6.5).
//
// The same unmodified pipeline that answered used-car queries runs over a
// 13-attribute census relation: it learns a completely different attribute
// model ({Age, Demographic-weight, Hours-per-week} emerges as the best
// approximate key) and answers the paper's example query
//
//	Q':- CensusDB(Education like Bachelors, Hours-per-week like 40)
//
// Because every tuple carries a ground-truth income class, the example also
// reports how often the suggested answers share the class of an exact-match
// respondent — the paper's Figure 9 measure, in miniature.
//
//	go run ./examples/census
package main

import (
	"fmt"
	"log"

	"aimq"
	"aimq/internal/datagen"
)

func main() {
	fmt.Println("building the census database (45k respondents)...")
	census := datagen.GenerateCensusDB(45_000, 2007)

	db := aimq.Open(census.Rel,
		aimq.WithSampleSize(15_000),
		aimq.WithSeed(3),
		aimq.WithErrorThreshold(0.08), // tighter Terr: census has near-constant attributes
		aimq.WithMaxLHS(2),
		aimq.WithThreshold(0.4),
		aimq.WithTopK(10),
		aimq.WithTargetRelevant(10),
		aimq.WithMaxQueriesPerBase(2000),
	)
	fmt.Println("learning from a 15k sample...")
	if err := db.Learn(); err != nil {
		log.Fatal(err)
	}

	key, support, err := db.BestKey()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmined best key: %v (support %.3f)\n", key, support)

	sims, err := db.SimilarValues("Education", "Bachelors", 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("Education=Bachelors is most similar to:")
	for _, s := range sims {
		fmt.Printf("  %s (%.3f)", s.Value, s.Similarity)
	}
	fmt.Println()

	const q = "Education like Bachelors, Hours-per-week like 40"
	fmt.Printf("\n--- imprecise query: %s ---\n", q)
	ans, err := db.Ask(q)
	if err != nil {
		log.Fatal(err)
	}
	// The full 13-column table is wide; print a projection.
	sc := census.Rel.Schema()
	cols := []string{"Age", "Education", "Occupation", "Hours-per-week", "Marital-Status"}
	idxs := make([]int, len(cols))
	for i, c := range cols {
		idxs[i] = sc.MustIndex(c)
	}
	fmt.Printf("%-6s", "sim")
	for _, c := range cols {
		fmt.Printf(" %-18s", c)
	}
	fmt.Println()
	for _, row := range ans.Rows {
		fmt.Printf("%.3f ", row.Similarity)
		for _, i := range idxs {
			fmt.Printf(" %-18s", row.Values[i])
		}
		fmt.Println()
	}
	fmt.Printf("(%d tuples extracted, %d qualified)\n",
		ans.Work.TuplesExtracted, ans.Work.TuplesQualified)
}
