// Used-car search: the paper's motivating scenario (§1) in full.
//
// A user searches a 100k-listing used-car database for "sedans priced
// around $10000". A boolean query model would return only exact matches and
// never suggest the $10500 Camry or the comparable Accord. This example
// shows AIMQ doing exactly what the paper promises:
//
//  1. what the learned model looks like (relaxation order, best key),
//
//  2. which models the system considers similar to a Camry — mined purely
//     from co-occurrence statistics,
//
//  3. the ranked answers to the imprecise query, including similar models
//     at similar prices,
//
//  4. the same query against a *strictly boolean* interpretation, for
//     contrast.
//
//     go run ./examples/usedcars
package main

import (
	"fmt"
	"log"

	"aimq"
	"aimq/internal/datagen"
)

func main() {
	fmt.Println("building the used-car database (100k listings)...")
	cars := datagen.GenerateCarDB(100_000, 2006)

	db := aimq.Open(cars.Rel,
		aimq.WithSampleSize(25_000), // learn from a 25k sample, as in the paper
		aimq.WithSeed(7),
		aimq.WithTopK(10),
		aimq.WithThreshold(0.5),
		aimq.WithTargetRelevant(60),
	)
	fmt.Println("learning from a 25k probe sample...")
	if err := db.Learn(); err != nil {
		log.Fatal(err)
	}

	// 1. What did AIMQ learn about the schema?
	model, err := db.DescribeModel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- learned attribute model ---")
	fmt.Print(model)

	// 2. Which models does the data say are like a Camry? Which makes are
	// like Ford? (Paper Table 3 / Figure 5.)
	fmt.Println("--- mined value similarities ---")
	for _, probe := range []struct{ attr, value string }{
		{"Model", "Camry"},
		{"Make", "Ford"},
		{"Year", "1985"},
	} {
		sims, err := db.SimilarValues(probe.attr, probe.value, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s=%s:", probe.attr, probe.value)
		for _, s := range sims {
			fmt.Printf("  %s (%.3f)", s.Value, s.Similarity)
		}
		fmt.Println()
	}

	// 3. The imprecise query from the paper's introduction.
	const q = "Model like Camry, Price like 10000, Mileage like 60000"
	fmt.Printf("\n--- imprecise query: %s ---\n", q)
	ans, err := db.Ask(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ans)
	fmt.Printf("(extracted %d tuples, %d above threshold)\n",
		ans.Work.TuplesExtracted, ans.Work.TuplesQualified)

	// 4. Contrast: the boolean reading of the same query finds only exact
	// matches — no $10200 Camrys, no 58k-mile Accords.
	fmt.Println("\n--- boolean reading (Model=Camry AND Price=10000 AND Mileage=60000) ---")
	fmt.Printf("base query used: %s\n", ans.BaseQuery)
	exact := 0
	for _, row := range ans.Rows {
		if row.Values[1] == "Camry" && row.Values[3] == "10000" && row.Values[4] == "60000" {
			exact++
		}
	}
	fmt.Printf("only %d of the top %d answers are exact boolean matches;\n", exact, len(ans.Rows))
	fmt.Println("the rest are what the boolean model would have silently dropped.")
}
