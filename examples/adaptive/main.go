// Adaptive session: the paper's §7 extensions in action.
//
// The paper closes with two directions beyond the core system: relevance
// feedback ("to tune the importance weights assigned to an attribute …
// [and] the distance between values binding an attribute") and query-driven
// importance ("query driven approaches are able to exploit user interest
// when the query workloads become available"). Both are implemented here,
// along with model persistence so none of the learning is thrown away
// between runs:
//
//  1. learn a model, save it, reload it into a fresh session (no re-mining);
//
//  2. give relevance feedback — watch a mined value similarity move;
//
//  3. issue a skewed query workload — watch attribute importance adapt.
//
//     go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"aimq"
	"aimq/internal/datagen"
)

func main() {
	cars := datagen.GenerateCarDB(20_000, 77)

	// --- 1. learn once, persist, reload ---
	first := aimq.Open(cars.Rel, aimq.WithSeed(5))
	fmt.Println("learning (first session)...")
	if err := first.Learn(); err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "aimq-adaptive")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	modelPath := filepath.Join(dir, "model.json")
	if err := first.SaveModel(modelPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model saved to %s\n", modelPath)

	db := aimq.Open(cars.Rel) // fresh session: no Learn call
	if err := db.LoadModel(modelPath); err != nil {
		log.Fatal(err)
	}
	fmt.Print("model reloaded into a fresh session — no re-mining\n\n")

	// --- 2. relevance feedback tunes value similarity ---
	show := func(label string) {
		sims, err := db.SimilarValues("Model", "Camry", 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s", label)
		for _, s := range sims {
			fmt.Printf("  %s (%.3f)", s.Value, s.Similarity)
		}
		fmt.Println()
	}
	show("Camry neighbors before:")
	// The user repeatedly accepts Avalon answers to Camry queries (both
	// Toyota sedans; mining rated them moderate).
	for i := 0; i < 8; i++ {
		err := db.Feedback("Model like Camry, Price like 15000",
			[]string{"Toyota", "Avalon", "2001", "15200", "55000", "Phoenix", "Silver"}, true)
		if err != nil {
			log.Fatal(err)
		}
	}
	show("after accepting Avalons:")

	// --- 3. the session's workload shifts attribute importance ---
	printWeight := func(label string) {
		order, err := db.AttributeOrder()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s", label)
		for _, a := range order {
			if a.Name == "Year" || a.Name == "Mileage" {
				fmt.Printf("  %s=%.3f", a.Name, a.Weight)
			}
		}
		fmt.Println()
	}
	fmt.Println()
	printWeight("importance before workload:")
	// This user base always constrains Year and rarely anything else.
	for i := 0; i < 12; i++ {
		if _, err := db.Ask("Year like 2003, Model like Civic"); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.AdaptToWorkload(0.4); err != nil {
		log.Fatal(err)
	}
	printWeight("after 12 Year-bound queries:")

	fmt.Println("\nfinal answers for: Year like 2003, Model like Civic")
	ans, err := db.Ask("Year like 2003, Model like Civic")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ans)
}
