// Web database: the full autonomous-source workflow over HTTP.
//
// The paper's setting is a database reachable *only* through a Web form.
// This example stands up exactly that — an HTTP server exposing a boolean
// form-style query interface — then runs the whole AIMQ pipeline against it
// from the outside: probing with spanning queries, mining the sample,
// answering an imprecise query. Every byte the learner sees travels over
// HTTP; the probe counter shows how many form submissions it took.
//
//	go run ./examples/webdb
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"aimq"
	"aimq/internal/datagen"
	"aimq/internal/webdb"
)

func main() {
	// --- server side: an autonomous used-car site ---
	cars := datagen.GenerateCarDB(30_000, 99)
	counted := &webdb.ProbeCounter{Src: webdb.NewLocal(cars.Rel)}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: webdb.NewServer(counted)}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("autonomous web database listening at %s\n", base)

	// --- client side: AIMQ knows only the URL ---
	db, err := aimq.Connect(base, nil,
		aimq.WithSeed(17),
		aimq.WithPivot("Make"),      // spanning queries: one per make
		aimq.WithSampleSize(10_000), // keep a 10k sample for mining
		aimq.WithTargetRelevant(40),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("probing the source with spanning queries...")
	if err := db.Learn(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probing cost: %d HTTP queries, %d tuples transferred\n",
		counted.Queries(), counted.Tuples())
	fmt.Printf("learned from %d sampled tuples\n\n", db.Sample().Size())

	counted.Reset()
	const q = "Make like Ford, Mileage between 40000 and 80000"
	fmt.Printf("imprecise query: %s\n", q)
	ans, err := db.Ask(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ans)
	fmt.Printf("(answering cost: %d HTTP queries, %d tuples transferred)\n",
		counted.Queries(), counted.Tuples())
}
