package aimq_test

import (
	"fmt"
	"log"

	"aimq"
	"aimq/internal/relation"
)

// demoRelation builds a tiny used-car relation for the examples. Real
// applications load data with aimq.OpenCSV or connect to a live source with
// aimq.Connect.
func demoRelation() *relation.Relation {
	sc := relation.MustSchema(
		relation.Attribute{Name: "Make", Type: relation.Categorical},
		relation.Attribute{Name: "Model", Type: relation.Categorical},
		relation.Attribute{Name: "Price", Type: relation.Numeric},
	)
	r := relation.New(sc)
	rows := []struct {
		mk, md string
		p      float64
	}{
		{"Toyota", "Camry", 10000}, {"Toyota", "Camry", 10400},
		{"Toyota", "Camry", 11800}, {"Toyota", "Corolla", 8200},
		{"Toyota", "Corolla", 8600}, {"Honda", "Accord", 10300},
		{"Honda", "Accord", 10700}, {"Honda", "Civic", 8400},
		{"Honda", "Civic", 8900}, {"Ford", "F150", 21000},
		{"Ford", "F150", 22500}, {"Dodge", "Ram", 21800},
	}
	for _, row := range rows {
		r.Append(relation.Tuple{relation.Cat(row.mk), relation.Cat(row.md), relation.Numv(row.p)})
	}
	return r
}

// The basic workflow: open, learn, ask.
func Example() {
	db := aimq.Open(demoRelation(), aimq.WithErrorThreshold(0.4), aimq.WithTopK(3))
	if err := db.Learn(); err != nil {
		log.Fatal(err)
	}
	ans, err := db.Ask("Model like Camry, Price like 10000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ans.Rows[0].Values[1]) // the best answer's Model
	// Output: Camry
}

// Mined value similarities are inspectable: the system learned from
// co-occurrence alone that Accords resemble Camrys.
func ExampleDB_SimilarValues() {
	db := aimq.Open(demoRelation(), aimq.WithErrorThreshold(0.4))
	if err := db.Learn(); err != nil {
		log.Fatal(err)
	}
	sims, err := db.SimilarValues("Model", "Camry", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sims[0].Value)
	// Output: Accord
}

// The learned attribute model explains how queries will relax.
func ExampleDB_AttributeOrder() {
	db := aimq.Open(demoRelation(), aimq.WithErrorThreshold(0.4))
	if err := db.Learn(); err != nil {
		log.Fatal(err)
	}
	order, err := db.AttributeOrder()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relaxed first: %s\n", order[0].Name)
	fmt.Printf("most important: %s\n", order[len(order)-1].Name)
	// Output:
	// relaxed first: Model
	// most important: Price
}
