# Tier-1 checks plus the race-checked serving path.
#
#   make check       — everything CI runs
#   make race        — race-check the concurrent packages (service, core,
#                      webdb, engine's columnar worker pool, similarity's
#                      chunked pair sweep)
#   make bench-serve — serving-path benchmarks (cache hit vs miss)
#   make bench-learn — offline learn-phase scenarios only (probe→mine→order
#                      →supertuple at 1x/2x/4x sample sizes, plus the
#                      isolated TANE mine stage)
#   make bench-engine— columnar boolean-engine scan scenario only (full
#                      scale: 1M tuples, sub-ms p50)
#   make bench       — full aimq-bench suite, BENCH_*.json into bench-results/
#   make bench-quick — shrunken suite (the scale CI gates on)
#   make bench-check — quick suite compared against bench/baseline; fails on
#                      regressions past 2x
#   make baseline    — refresh the checked-in bench/baseline from a quick run

GO ?= go
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -X aimq/internal/version.Version=$(VERSION)

.PHONY: check vet build test race bench-serve bench-learn bench-engine bench bench-quick bench-check baseline

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The answer cache and single-flight code are exercised concurrently; keep
# them race-clean. core and webdb carry the context plumbing they rely on,
# and obs is written to concurrently by every traced request. engine runs
# the columnar chunk worker pool (and its randomized differential suite);
# similarity chunks the VSim pair sweep across goroutines. tane shards
# lattice levels across workers (with its own differential oracle suite),
# and partition's scratch reuse backs that sharding.
race:
	$(GO) test -race ./internal/service/... ./internal/core/... ./internal/webdb/... ./internal/obs/... ./internal/engine/... ./internal/similarity/... ./internal/audit/... ./internal/drift/... ./internal/lifecycle/... ./internal/tane/... ./internal/partition/...

bench-serve:
	$(GO) test -run XXX -bench 'BenchmarkService_' -benchmem ./internal/service/

bench-learn:
	$(GO) run -ldflags '$(LDFLAGS)' ./cmd/aimq-bench -run learn,mine -out bench-results

# Full scale: 1M generated tuples, sub-millisecond boolean-query p50 on the
# columnar path (posting-bitmap ANDs, zone-map skips, popcount counts).
bench-engine:
	$(GO) run -ldflags '$(LDFLAGS)' ./cmd/aimq-bench -run engine-scan -out bench-results

bench:
	$(GO) run -ldflags '$(LDFLAGS)' ./cmd/aimq-bench -out bench-results

bench-quick:
	$(GO) run -ldflags '$(LDFLAGS)' ./cmd/aimq-bench -quick -out bench-results

# The alloc gates are absolute, not baseline-relative: the zero-allocation
# serve path stays under 16 allocs/op (measured ~3), and the columnar
# engine's scan path under 64 (measured ~9: plan + accumulator + result).
bench-check:
	$(GO) run -ldflags '$(LDFLAGS)' ./cmd/aimq-bench -quick -out bench-results \
		-baseline bench/baseline -threshold 2 -alloc-gate serve-warm=16,engine-scan=64

baseline:
	$(GO) run -ldflags '$(LDFLAGS)' ./cmd/aimq-bench -quick -out bench/baseline
