# Tier-1 checks plus the race-checked serving path.
#
#   make check       — everything CI runs
#   make race        — race-check the concurrent packages (service, core, webdb)
#   make bench-serve — serving-path benchmarks (cache hit vs miss)
#   make bench-learn — offline learn-phase scenarios only (probe→mine→order
#                      →supertuple at 1x/2x/4x sample sizes)
#   make bench       — full aimq-bench suite, BENCH_*.json into bench-results/
#   make bench-quick — shrunken suite (the scale CI gates on)
#   make bench-check — quick suite compared against bench/baseline; fails on
#                      regressions past 2x
#   make baseline    — refresh the checked-in bench/baseline from a quick run

GO ?= go
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -X aimq/internal/version.Version=$(VERSION)

.PHONY: check vet build test race bench-serve bench-learn bench bench-quick bench-check baseline

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The answer cache and single-flight code are exercised concurrently; keep
# them race-clean. core and webdb carry the context plumbing they rely on,
# and obs is written to concurrently by every traced request.
race:
	$(GO) test -race ./internal/service/... ./internal/core/... ./internal/webdb/... ./internal/obs/...

bench-serve:
	$(GO) test -run XXX -bench 'BenchmarkService_' -benchmem ./internal/service/

bench-learn:
	$(GO) run -ldflags '$(LDFLAGS)' ./cmd/aimq-bench -run learn -out bench-results

bench:
	$(GO) run -ldflags '$(LDFLAGS)' ./cmd/aimq-bench -out bench-results

bench-quick:
	$(GO) run -ldflags '$(LDFLAGS)' ./cmd/aimq-bench -quick -out bench-results

# The alloc gate is absolute, not baseline-relative: the zero-allocation
# serve path stays under 16 allocs/op (measured ~3) or the gate fails.
bench-check:
	$(GO) run -ldflags '$(LDFLAGS)' ./cmd/aimq-bench -quick -out bench-results \
		-baseline bench/baseline -threshold 2 -alloc-gate serve-warm=16

baseline:
	$(GO) run -ldflags '$(LDFLAGS)' ./cmd/aimq-bench -quick -out bench/baseline
