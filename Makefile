# Tier-1 checks plus the race-checked serving path.
#
#   make check       — everything CI runs
#   make race        — race-check the concurrent packages (service, core, webdb)
#   make bench-serve — serving-path benchmarks (cache hit vs miss)

GO ?= go

.PHONY: check vet build test race bench-serve

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The answer cache and single-flight code are exercised concurrently; keep
# them race-clean. core and webdb carry the context plumbing they rely on,
# and obs is written to concurrently by every traced request.
race:
	$(GO) test -race ./internal/service/... ./internal/core/... ./internal/webdb/... ./internal/obs/...

bench-serve:
	$(GO) test -run XXX -bench 'BenchmarkService_' -benchmem ./internal/service/
