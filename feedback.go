package aimq

import (
	"fmt"

	"aimq/internal/feedback"
	"aimq/internal/query"
	"aimq/internal/relation"
)

// Feedback folds one relevance judgment into the learned model: the row
// (an Answers.Row values slice, or any tuple rendered as strings in schema
// order) was or was not a relevant answer to the query. Positive feedback
// on an answer whose categorical value differs from the query's raises the
// mined similarity between the two values; attribute importance shifts
// toward the attributes that explain the judgments (paper §7).
//
// Feedback is incremental: call it as judgments arrive. It is not safe to
// call concurrently with Ask.
func (db *DB) Feedback(queryText string, rowValues []string, relevant bool) error {
	if !db.Learned() {
		return ErrNotLearned
	}
	q, err := query.Parse(db.Schema(), queryText)
	if err != nil {
		return err
	}
	t, err := db.parseRow(rowValues)
	if err != nil {
		return err
	}
	tuner := &feedback.Tuner{Ord: db.ord, Est: db.est, Rate: db.cfg.feedbackRate}
	_, err = tuner.Apply([]feedback.Judgment{{Query: q, Tuple: t, Relevant: relevant}})
	return err
}

// FeedbackBatch applies many judgments at once and returns a human-readable
// summary of the weight drift.
func (db *DB) FeedbackBatch(judgments []UserJudgment) (string, error) {
	if !db.Learned() {
		return "", ErrNotLearned
	}
	js := make([]feedback.Judgment, 0, len(judgments))
	for i, uj := range judgments {
		q, err := query.Parse(db.Schema(), uj.Query)
		if err != nil {
			return "", fmt.Errorf("judgment %d: %w", i, err)
		}
		t, err := db.parseRow(uj.Row)
		if err != nil {
			return "", fmt.Errorf("judgment %d: %w", i, err)
		}
		js = append(js, feedback.Judgment{Query: q, Tuple: t, Relevant: uj.Relevant})
	}
	tuner := &feedback.Tuner{Ord: db.ord, Est: db.est, Rate: db.cfg.feedbackRate}
	rep, err := tuner.Apply(js)
	if err != nil {
		return "", err
	}
	return rep.Describe(), nil
}

// UserJudgment is one façade-level relevance judgment.
type UserJudgment struct {
	// Query in the Ask syntax the judgment responds to.
	Query string
	// Row holds the judged tuple's values in schema order (as rendered in
	// Answers.Rows[i].Values).
	Row []string
	// Relevant reports whether the user accepted the answer.
	Relevant bool
}

// parseRow converts rendered values back into a tuple under the schema.
func (db *DB) parseRow(values []string) (relation.Tuple, error) {
	sc := db.Schema()
	if len(values) != sc.Arity() {
		return nil, fmt.Errorf("aimq: row has %d values, schema has %d attributes", len(values), sc.Arity())
	}
	t := make(relation.Tuple, len(values))
	for i, raw := range values {
		v, err := relation.ParseValue(raw, sc.Type(i))
		if err != nil {
			return nil, fmt.Errorf("aimq: row value %s: %w", sc.Attr(i).Name, err)
		}
		t[i] = v
	}
	return t, nil
}
