package aimq

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"aimq/internal/datagen"
	"aimq/internal/relation"
	"aimq/internal/webdb"
)

func learnedCarDB(t testing.TB, n int, opts ...Option) (*DB, *datagen.CarDB) {
	t.Helper()
	gen := datagen.GenerateCarDB(n, 7)
	opts = append([]Option{WithSample(gen.Rel), WithSeed(11)}, opts...)
	db := Open(gen.Rel, opts...)
	if err := db.Learn(); err != nil {
		t.Fatalf("Learn: %v", err)
	}
	return db, gen
}

func TestAskBeforeLearn(t *testing.T) {
	gen := datagen.GenerateCarDB(100, 1)
	db := Open(gen.Rel)
	if _, err := db.Ask("Make like Ford"); !errors.Is(err, ErrNotLearned) {
		t.Errorf("Ask before Learn = %v", err)
	}
	if _, err := db.AttributeOrder(); !errors.Is(err, ErrNotLearned) {
		t.Errorf("AttributeOrder before Learn = %v", err)
	}
	if _, _, err := db.BestKey(); !errors.Is(err, ErrNotLearned) {
		t.Errorf("BestKey before Learn = %v", err)
	}
	if _, err := db.SimilarValues("Make", "Ford", 3); !errors.Is(err, ErrNotLearned) {
		t.Errorf("SimilarValues before Learn = %v", err)
	}
	if db.Learned() {
		t.Errorf("Learned true before Learn")
	}
}

func TestEndToEndAsk(t *testing.T) {
	db, _ := learnedCarDB(t, 6000)
	ans, err := db.Ask("Model like Camry, Price like 9000")
	if err != nil {
		t.Fatalf("Ask: %v", err)
	}
	if len(ans.Rows) == 0 || len(ans.Rows) > 10 {
		t.Fatalf("rows = %d", len(ans.Rows))
	}
	if len(ans.Columns) != 7 {
		t.Errorf("columns = %v", ans.Columns)
	}
	for i := 1; i < len(ans.Rows); i++ {
		if ans.Rows[i-1].Similarity < ans.Rows[i].Similarity {
			t.Errorf("rows not ranked")
		}
	}
	if ans.Rows[0].Values[1] != "Camry" {
		t.Errorf("top answer model = %q", ans.Rows[0].Values[1])
	}
	if ans.Work.QueriesIssued == 0 || ans.Work.TuplesExtracted == 0 {
		t.Errorf("work empty: %+v", ans.Work)
	}
	if ans.BaseQuery == "" {
		t.Errorf("BaseQuery empty")
	}
	// Table rendering.
	s := ans.String()
	if !strings.Contains(s, "Camry") || !strings.Contains(s, "sim") {
		t.Errorf("String render missing content:\n%s", s)
	}
}

func TestAskParseErrors(t *testing.T) {
	db, _ := learnedCarDB(t, 1000)
	if _, err := db.Ask("Ghost like X"); err == nil {
		t.Errorf("unknown attribute accepted")
	}
	if _, err := db.Ask(""); err == nil {
		t.Errorf("empty query accepted")
	}
}

func TestAskTuple(t *testing.T) {
	db, gen := learnedCarDB(t, 4000, WithTopK(5))
	ans, err := db.AskTuple(gen.Rel.Tuple(0))
	if err != nil {
		t.Fatalf("AskTuple: %v", err)
	}
	if len(ans.Rows) == 0 || len(ans.Rows) > 5 {
		t.Fatalf("rows = %d", len(ans.Rows))
	}
	// The reference tuple itself is in the DB: best answer is an exact or
	// near-exact match.
	if ans.Rows[0].Similarity < 0.99 {
		t.Errorf("top similarity = %v", ans.Rows[0].Similarity)
	}
}

func TestIntrospection(t *testing.T) {
	db, _ := learnedCarDB(t, 5000)
	order, err := db.AttributeOrder()
	if err != nil || len(order) != 7 {
		t.Fatalf("AttributeOrder = %d attrs, %v", len(order), err)
	}
	total := 0.0
	decidingSeen := false
	for i, a := range order {
		if a.RelaxOrder != i+1 {
			t.Errorf("RelaxOrder[%d] = %d", i, a.RelaxOrder)
		}
		total += a.Weight
		decidingSeen = decidingSeen || a.Deciding
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("weights sum = %v", total)
	}
	if !decidingSeen {
		t.Errorf("no deciding attributes reported")
	}

	keyAttrs, support, err := db.BestKey()
	if err != nil || len(keyAttrs) == 0 || support <= 0 || support > 1 {
		t.Errorf("BestKey = %v, %v, %v", keyAttrs, support, err)
	}

	sims, err := db.SimilarValues("Make", "Ford", 3)
	if err != nil || len(sims) == 0 {
		t.Fatalf("SimilarValues = %v, %v", sims, err)
	}
	for i := 1; i < len(sims); i++ {
		if sims[i-1].Similarity < sims[i].Similarity {
			t.Errorf("SimilarValues not ranked")
		}
	}
	if _, err := db.SimilarValues("Ghost", "x", 3); err == nil {
		t.Errorf("unknown attribute accepted")
	}
	if _, err := db.SimilarValues("Price", "x", 3); err == nil {
		t.Errorf("numeric attribute accepted")
	}

	st, err := db.SuperTuple("Make", "Ford", 3)
	if err != nil || !strings.Contains(st, "Make=Ford") {
		t.Errorf("SuperTuple = %q, %v", st, err)
	}
	if _, err := db.SuperTuple("Make", "DeLorean", 3); err == nil {
		t.Errorf("unseen value accepted")
	}
	if _, err := db.SuperTuple("Ghost", "x", 3); err == nil {
		t.Errorf("unknown attribute accepted")
	}

	model, err := db.DescribeModel()
	if err != nil || !strings.Contains(model, "relaxation order") {
		t.Errorf("DescribeModel = %v, %v", model, err)
	}
}

func TestLearnByProbing(t *testing.T) {
	gen := datagen.GenerateCarDB(3000, 9)
	db := Open(gen.Rel, WithSeed(5), WithPivot("Make"), WithSampleSize(2000))
	if err := db.Learn(); err != nil {
		t.Fatalf("Learn via probing: %v", err)
	}
	if db.Sample() == nil || db.Sample().Size() != 2000 {
		t.Errorf("probed sample size = %v", db.Sample())
	}
	if _, err := db.Ask("Model like Civic"); err != nil {
		t.Errorf("Ask after probing: %v", err)
	}
}

func TestLearnAutoPivot(t *testing.T) {
	gen := datagen.GenerateCarDB(2000, 10)
	db := Open(gen.Rel, WithSeed(6))
	if err := db.Learn(); err != nil {
		t.Fatalf("Learn with auto pivot: %v", err)
	}
}

func TestConnectRemote(t *testing.T) {
	gen := datagen.GenerateCarDB(3000, 12)
	srv := httptest.NewServer(webdb.NewServer(webdb.NewLocal(gen.Rel)))
	defer srv.Close()

	db, err := Connect(srv.URL, srv.Client(), WithSeed(13), WithSampleSize(1500))
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if err := db.Learn(); err != nil {
		t.Fatalf("Learn over HTTP: %v", err)
	}
	ans, err := db.Ask("Model like Accord, Price like 8000")
	if err != nil {
		t.Fatalf("Ask over HTTP: %v", err)
	}
	if len(ans.Rows) == 0 {
		t.Errorf("no remote answers")
	}
	if _, err := Connect("http://127.0.0.1:1", nil); err == nil {
		t.Errorf("Connect to dead address succeeded")
	}
}

func TestOpenCSV(t *testing.T) {
	gen := datagen.GenerateCarDB(500, 14)
	path := t.TempDir() + "/car.csv"
	if err := relation.SaveCSV(path, gen.Rel); err != nil {
		t.Fatal(err)
	}
	db, err := OpenCSV(path, WithSample(gen.Rel))
	if err != nil {
		t.Fatalf("OpenCSV: %v", err)
	}
	if db.Schema().Arity() != 7 {
		t.Errorf("schema arity = %d", db.Schema().Arity())
	}
	if _, err := OpenCSV(path + ".missing"); err == nil {
		t.Errorf("missing CSV accepted")
	}
}

func TestOptionsApply(t *testing.T) {
	gen := datagen.GenerateCarDB(2500, 15)
	db := Open(gen.Rel,
		WithSample(gen.Rel),
		WithErrorThreshold(0.2),
		WithMaxLHS(2),
		WithBuckets(8),
		WithMinSim(0.01),
		WithThreshold(0.6),
		WithTopK(3),
		WithBaseLimit(2),
		WithPerQueryLimit(50),
		WithTargetRelevant(15),
		WithMaxQueriesPerBase(40),
		WithMaxSourceFailures(2),
	)
	if err := db.Learn(); err != nil {
		t.Fatalf("Learn: %v", err)
	}
	ans, err := db.Ask("Model like Corolla")
	if err != nil {
		t.Fatalf("Ask: %v", err)
	}
	if len(ans.Rows) > 3 {
		t.Errorf("WithTopK(3) ignored: %d rows", len(ans.Rows))
	}
}

func TestWorkloadAdaptation(t *testing.T) {
	db, _ := learnedCarDB(t, 3000)
	if err := db.AdaptToWorkload(0.5); err == nil {
		t.Errorf("adaptation with empty workload accepted")
	}
	// A session that only ever binds Color tells the system users care
	// about Color far more than mining suggested.
	colorIdx := db.Schema().MustIndex("Color")
	before, err := db.AttributeOrder()
	if err != nil {
		t.Fatal(err)
	}
	var beforeW float64
	for _, a := range before {
		if a.Name == "Color" {
			beforeW = a.Weight
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Ask("Color like Red"); err != nil {
			t.Fatal(err)
		}
	}
	if db.WorkloadQueries() != 10 {
		t.Fatalf("WorkloadQueries = %d", db.WorkloadQueries())
	}
	if err := db.AdaptToWorkload(0.5); err != nil {
		t.Fatal(err)
	}
	after, err := db.AttributeOrder()
	if err != nil {
		t.Fatal(err)
	}
	var afterW float64
	for _, a := range after {
		if a.Name == "Color" {
			afterW = a.Weight
		}
	}
	if afterW <= beforeW {
		t.Errorf("Color weight did not grow: %v -> %v", beforeW, afterW)
	}
	// The adapted model still answers queries.
	if _, err := db.Ask("Model like Camry"); err != nil {
		t.Errorf("Ask after adaptation: %v", err)
	}
	_ = colorIdx

	fresh := Open(datagen.GenerateCarDB(100, 9).Rel)
	if err := fresh.AdaptToWorkload(0.5); !errors.Is(err, ErrNotLearned) {
		t.Errorf("adaptation before Learn = %v", err)
	}
}

func TestProbeParallelismOption(t *testing.T) {
	gen := datagen.GenerateCarDB(3000, 19)
	seq := Open(gen.Rel, WithSeed(4), WithPivot("Make"))
	if err := seq.Learn(); err != nil {
		t.Fatal(err)
	}
	par := Open(gen.Rel, WithSeed(4), WithPivot("Make"), WithProbeParallelism(4))
	if err := par.Learn(); err != nil {
		t.Fatal(err)
	}
	// Determinism: the probed samples are identical, so so are the models.
	a, _, _ := seq.BestKey()
	b, _, _ := par.BestKey()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("parallel probing changed the learned model: %v vs %v", a, b)
	}
	if seq.Sample().Size() != par.Sample().Size() {
		t.Errorf("sample sizes differ: %d vs %d", seq.Sample().Size(), par.Sample().Size())
	}
}

func TestTrace(t *testing.T) {
	db, _ := learnedCarDB(t, 2000, WithTrace(true), WithTargetRelevant(25))
	ans, err := db.Ask("Model like Camry, Price like 9000")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Trace) == 0 {
		t.Fatalf("WithTrace recorded nothing")
	}
	productive := 0
	for _, s := range ans.Trace {
		if s.Failed {
			t.Errorf("unexpected failed step against a healthy source")
		}
		if s.Qualified > s.Extracted {
			t.Errorf("step qualified %d > extracted %d", s.Qualified, s.Extracted)
		}
		if s.Query == "" {
			t.Errorf("trace step without a query")
		}
		if s.Qualified > 0 {
			productive++
		}
	}
	if productive == 0 {
		t.Errorf("no productive steps in trace")
	}
	out := ans.ExplainTrace()
	if !strings.Contains(out, "qualified") || !strings.Contains(out, "further steps") {
		t.Errorf("ExplainTrace = %q", out)
	}
	// Untraced sessions say so.
	db2, _ := learnedCarDB(t, 500)
	ans2, err := db2.Ask("Model like Civic")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans2.Trace) != 0 {
		t.Errorf("trace recorded without WithTrace")
	}
	if !strings.Contains(ans2.ExplainTrace(), "no trace recorded") {
		t.Errorf("ExplainTrace on untraced = %q", ans2.ExplainTrace())
	}
}

func TestAskWithInList(t *testing.T) {
	db, _ := learnedCarDB(t, 3000)
	ans, err := db.Ask("Make in (Kia | Hyundai), Price like 6000")
	if err != nil {
		t.Fatalf("Ask with in-list: %v", err)
	}
	if len(ans.Rows) == 0 {
		t.Fatalf("no answers for in-list query")
	}
	if mk := ans.Rows[0].Values[0]; mk != "Kia" && mk != "Hyundai" {
		t.Errorf("top answer make = %q", mk)
	}
}
