package aimq

import (
	"errors"
	"strings"
	"testing"

	"aimq/internal/datagen"
)

func TestFeedbackRaisesSimilarity(t *testing.T) {
	db, _ := learnedCarDB(t, 4000)
	before, err := db.SimilarValues("Model", "Camry", 50)
	if err != nil {
		t.Fatal(err)
	}
	simOf := func(list []ValueSimilarity, v string) float64 {
		for _, s := range list {
			if s.Value == v {
				return s.Similarity
			}
		}
		return 0
	}
	b := simOf(before, "Accord")
	row := []string{"Honda", "Accord", "2000", "10400", "64000", "Phoenix", "White"}
	for i := 0; i < 5; i++ {
		if err := db.Feedback("Model like Camry, Price like 10000", row, true); err != nil {
			t.Fatal(err)
		}
	}
	after, err := db.SimilarValues("Model", "Camry", 50)
	if err != nil {
		t.Fatal(err)
	}
	if a := simOf(after, "Accord"); a <= b {
		t.Errorf("feedback did not raise Camry~Accord: %v -> %v", b, a)
	}
}

func TestFeedbackErrors(t *testing.T) {
	gen := datagen.GenerateCarDB(200, 21)
	db := Open(gen.Rel)
	row := []string{"Honda", "Accord", "2000", "10400", "64000", "Phoenix", "White"}
	if err := db.Feedback("Model like Camry", row, true); !errors.Is(err, ErrNotLearned) {
		t.Errorf("Feedback before Learn = %v", err)
	}
	db2, _ := learnedCarDB(t, 500)
	if err := db2.Feedback("Ghost like X", row, true); err == nil {
		t.Errorf("bad query accepted")
	}
	if err := db2.Feedback("Model like Camry", []string{"too", "short"}, true); err == nil {
		t.Errorf("short row accepted")
	}
	badNum := []string{"Honda", "Accord", "2000", "not-a-price", "64000", "Phoenix", "White"}
	if err := db2.Feedback("Model like Camry", badNum, true); err == nil {
		t.Errorf("garbage numeric accepted")
	}
}

func TestFeedbackBatch(t *testing.T) {
	db, _ := learnedCarDB(t, 2000)
	summary, err := db.FeedbackBatch([]UserJudgment{
		{Query: "Model like Camry, Price like 10000",
			Row: []string{"Honda", "Accord", "2000", "10200", "60000", "Phoenix", "White"}, Relevant: true},
		{Query: "Model like Camry, Price like 10000",
			Row: []string{"Ford", "F150", "1995", "24000", "150000", "Dallas", "Red"}, Relevant: false},
	})
	if err != nil {
		t.Fatalf("FeedbackBatch: %v", err)
	}
	if !strings.Contains(summary, "applied 2 judgments") {
		t.Errorf("summary = %q", summary)
	}
	if _, err := db.FeedbackBatch([]UserJudgment{{Query: "Nope ??", Row: nil}}); err == nil {
		t.Errorf("bad batch accepted")
	}
	fresh := Open(datagen.GenerateCarDB(100, 3).Rel)
	if _, err := fresh.FeedbackBatch(nil); !errors.Is(err, ErrNotLearned) {
		t.Errorf("batch before Learn = %v", err)
	}
}
