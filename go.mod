module aimq

go 1.22
