package aimq

import "aimq/internal/relation"

// config holds all tunables of a session; every field has a paper-aligned
// default and a corresponding Option.
type config struct {
	seed         int64
	pivot        string
	sample       *relation.Relation
	sampleSize   int
	probeWorkers int

	terr    float64
	maxLHS  int
	buckets int
	minSim  float64

	tsim              float64
	k                 int
	baseLimit         int
	perQueryLimit     int
	targetRelevant    int
	maxQueriesPerBase int
	maxSourceFailures int
	feedbackRate      float64
	trace             bool
}

func defaultConfig() config {
	return config{
		seed:    1,
		terr:    0.15,
		buckets: 10,
		tsim:    0.5,
		k:       10,
	}
}

// Option customizes a DB session.
type Option func(*config)

// WithSeed sets the seed for probing and sampling randomness.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithPivot sets the attribute used to build spanning probe queries. By
// default the lowest-cardinality attribute found by a seed probe is used.
func WithPivot(attr string) Option { return func(c *config) { c.pivot = attr } }

// WithSample supplies a pre-collected sample, skipping the probing phase.
func WithSample(rel *relation.Relation) Option { return func(c *config) { c.sample = rel } }

// WithSampleSize caps the probed sample used for mining (0 = keep all).
func WithSampleSize(n int) Option { return func(c *config) { c.sampleSize = n } }

// WithProbeParallelism issues this many spanning probes concurrently during
// Learn (default 1). The probed sample is identical regardless: results
// merge in query order.
func WithProbeParallelism(n int) Option { return func(c *config) { c.probeWorkers = n } }

// WithErrorThreshold sets TANE's g3 error threshold Terr (default 0.15).
func WithErrorThreshold(terr float64) Option { return func(c *config) { c.terr = terr } }

// WithMaxLHS bounds the antecedent size of mined dependencies (default:
// min(arity−1, 3)).
func WithMaxLHS(n int) Option { return func(c *config) { c.maxLHS = n } }

// WithBuckets sets the numeric discretization used in supertuples
// (default 10).
func WithBuckets(n int) Option { return func(c *config) { c.buckets = n } }

// WithMinSim drops precomputed value similarities below the given value,
// keeping the similarity matrices sparse (default 0).
func WithMinSim(s float64) Option { return func(c *config) { c.minSim = s } }

// WithThreshold sets the answer similarity threshold Tsim (default 0.5).
func WithThreshold(tsim float64) Option { return func(c *config) { c.tsim = tsim } }

// WithTopK sets how many answers Ask returns (default 10).
func WithTopK(k int) Option { return func(c *config) { c.k = k } }

// WithBaseLimit caps how many base-set tuples are expanded via relaxation
// (default 10).
func WithBaseLimit(n int) Option { return func(c *config) { c.baseLimit = n } }

// WithPerQueryLimit caps tuples fetched per relaxation query (default 200).
func WithPerQueryLimit(n int) Option { return func(c *config) { c.perQueryLimit = n } }

// WithTargetRelevant stops relaxation after this many tuples above the
// threshold have been found (default 0: exhaust the schedule).
func WithTargetRelevant(n int) Option { return func(c *config) { c.targetRelevant = n } }

// WithMaxQueriesPerBase caps relaxation queries per base tuple — useful on
// high-arity relations (default 0: unlimited).
func WithMaxQueriesPerBase(n int) Option { return func(c *config) { c.maxQueriesPerBase = n } }

// WithMaxSourceFailures tolerates this many failed source queries per Ask
// before giving up (default 0).
func WithMaxSourceFailures(n int) Option { return func(c *config) { c.maxSourceFailures = n } }

// WithFeedbackRate sets the relevance-feedback learning rate η ∈ (0, 1]
// used by Feedback and FeedbackBatch (default 0.1).
func WithFeedbackRate(rate float64) Option { return func(c *config) { c.feedbackRate = rate } }

// WithTrace records every relaxation step into Answers.Trace — which
// queries ran, how many tuples each extracted and how many qualified.
// Useful for understanding and debugging the relaxation behaviour; off by
// default because deep schedules produce large traces.
func WithTrace(on bool) Option { return func(c *config) { c.trace = on } }
