package aimq

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"aimq/internal/datagen"
	"aimq/internal/webdb"
)

// TestIntegrationFullStackOverHTTP drives the complete pipeline — probing,
// mining, similarity estimation, relaxation, feedback, persistence — with
// every byte crossing an HTTP boundary, the way a real deployment against
// an autonomous web database would run.
func TestIntegrationFullStackOverHTTP(t *testing.T) {
	gen := datagen.GenerateCarDB(6000, 31)
	counted := &webdb.ProbeCounter{Src: webdb.NewLocal(gen.Rel)}
	srv := httptest.NewServer(webdb.NewServer(counted))
	defer srv.Close()

	db, err := Connect(srv.URL, srv.Client(),
		WithSeed(32), WithPivot("Make"), WithSampleSize(3000), WithTargetRelevant(40))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Learn(); err != nil {
		t.Fatalf("Learn over HTTP: %v", err)
	}
	if counted.Queries() == 0 {
		t.Fatalf("no probing traffic observed")
	}

	ans, err := db.Ask("Model like Camry, Price like 9000")
	if err != nil {
		t.Fatalf("Ask over HTTP: %v", err)
	}
	if len(ans.Rows) == 0 {
		t.Fatalf("no answers over HTTP")
	}
	if ans.Rows[0].Values[1] != "Camry" {
		t.Errorf("top answer = %v", ans.Rows[0].Values)
	}

	// Feedback and persistence work in the remote session too.
	if err := db.Feedback("Model like Camry, Price like 9000", ans.Rows[0].Values, true); err != nil {
		t.Errorf("Feedback: %v", err)
	}
	path := t.TempDir() + "/remote-model.json"
	if err := db.SaveModel(path); err != nil {
		t.Errorf("SaveModel: %v", err)
	}
	reloaded, err := Connect(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	if err := reloaded.LoadModel(path); err != nil {
		t.Fatalf("LoadModel into a second remote session: %v", err)
	}
	if _, err := reloaded.Ask("Make like Ford"); err != nil {
		t.Errorf("Ask on reloaded remote session: %v", err)
	}
}

// TestIntegrationFlakySource proves the pipeline degrades gracefully when
// the autonomous source fails intermittently.
func TestIntegrationFlakySource(t *testing.T) {
	gen := datagen.GenerateCarDB(3000, 33)
	flaky := &webdb.Flaky{Src: webdb.NewLocal(gen.Rel), FailProb: 0.10, Rng: rand.New(rand.NewSource(34))}
	db := OpenSource(flaky,
		WithSample(gen.Rel), // learn offline; exercise failures online
		WithMaxSourceFailures(500),
	)
	if err := db.Learn(); err != nil {
		t.Fatal(err)
	}
	ans, err := db.Ask("Model like Accord, Price like 8000")
	if err != nil {
		t.Fatalf("Ask against flaky source: %v", err)
	}
	if len(ans.Rows) == 0 {
		t.Errorf("flaky source produced no answers")
	}
	// Zero tolerance surfaces the failure instead.
	strict := OpenSource(&webdb.Flaky{Src: webdb.NewLocal(gen.Rel), FailEvery: 2},
		WithSample(gen.Rel))
	if err := strict.Learn(); err != nil {
		t.Fatal(err)
	}
	if _, err := strict.Ask("Model like Accord"); err == nil {
		t.Errorf("strict session swallowed source failures")
	}
}

// TestIntegrationConcurrentAsk exercises the documented guarantee that Ask
// is safe to call concurrently after Learn.
func TestIntegrationConcurrentAsk(t *testing.T) {
	db, _ := learnedCarDB(t, 4000)
	queries := []string{
		"Model like Camry, Price like 9000",
		"Make like Ford, Mileage between 40000 and 90000",
		"Model like Civic",
		"Make like Kia, Price like 4000",
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(queries)*4)
	for w := 0; w < 4; w++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q string) {
				defer wg.Done()
				ans, err := db.Ask(q)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", q, err)
					return
				}
				if len(ans.Rows) == 0 {
					errs <- fmt.Errorf("%s: no rows", q)
				}
			}(q)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
